//! Bounded multi-producer arrival ring with blocking backpressure.
//!
//! The serve loop ingests arrivals from this ring instead of iterating a
//! `Vec`: producers [`push_batch`] `(tenant, request index)` pairs and block
//! while the ring is full (backpressure — the counter is first-class bench
//! output), the consumer [`drain_into`]s micro-batches and blocks while the
//! ring is empty. FIFO order is preserved end to end, which is all the
//! determinism contract needs: the canonical arrival order goes in, the
//! canonical arrival order comes out, however the batches are cut.
//!
//! [`push_batch`]: ArrivalRing::push_batch
//! [`drain_into`]: ArrivalRing::drain_into

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// One queued arrival: `(tenant, index into that tenant's request stream)`.
pub type Arrival = (u32, u32);

/// Retry policy for [`ArrivalRing::push_batch_bounded`]: how long (and how
/// patiently) a producer waits on a full ring before giving up instead of
/// blocking forever. Waits back off exponentially from `initial_wait` to
/// `max_wait`; `max_waits` timed-out waits *in a row* (any progress resets
/// the streak) abandon the push.
#[derive(Debug, Clone)]
pub struct PushBudget {
    /// First wait on a full ring.
    pub initial_wait: Duration,
    /// Cap on the exponential backoff.
    pub max_wait: Duration,
    /// Consecutive timed-out waits tolerated before giving up.
    pub max_waits: u32,
}

impl Default for PushBudget {
    /// Generous liveness bound: ~1 ms growing to 100 ms waits, 600 strikes —
    /// roughly a minute of a completely wedged consumer before the producer
    /// abandons ingest. A healthy consumer never comes close, so the bound
    /// changes no result; it only converts a permanent hang into a clean
    /// give-up.
    fn default() -> Self {
        Self {
            initial_wait: Duration::from_millis(1),
            max_wait: Duration::from_millis(100),
            max_waits: 600,
        }
    }
}

/// What a bounded push accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushOutcome {
    /// Items actually enqueued (a prefix of the batch).
    pub pushed: usize,
    /// `true` when the push abandoned the remainder because the retry
    /// budget ran out (as opposed to the ring being closed).
    pub gave_up: bool,
}

#[derive(Debug)]
struct RingState {
    queue: VecDeque<Arrival>,
    closed: bool,
    /// Producer-side blocking episodes (not items, not wakeups): how often
    /// an item push found the ring full and had to wait for the consumer.
    /// Spurious condvar wakeups re-enter the wait loop without bumping this.
    backpressure_waits: u64,
    pushed: u64,
}

/// A bounded FIFO of arrivals shared between producer threads and the serve
/// consumer. Capacity is the backpressure knob: a full ring blocks
/// producers until the consumer drains, so ingest can never outrun serve by
/// more than `capacity` arrivals.
#[derive(Debug)]
pub struct ArrivalRing {
    inner: Mutex<RingState>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl ArrivalRing {
    /// Creates a ring holding at most `capacity` queued arrivals
    /// (`capacity` is clamped to at least 1 — a zero-capacity ring could
    /// never transfer anything).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(RingState {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
                backpressure_waits: 0,
                pushed: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Maximum queued arrivals.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues a batch in order, blocking whenever the ring is full.
    /// Returns how many items were actually enqueued. The count is short of
    /// `items.len()` only when the ring was closed mid-push — the consumer
    /// is gone, so the rest of the batch is dropped — and whatever prefix
    /// was enqueued before the close is still drainable, so `pushed` in
    /// [`stats`](Self::stats) always equals what the consumer can observe.
    pub fn push_batch(&self, items: &[Arrival]) -> usize {
        self.push_impl(items, None).pushed
    }

    /// [`push_batch`](Self::push_batch) with a bounded retry-with-backoff
    /// wait instead of indefinite blocking: when a full ring stays full for
    /// `budget.max_waits` consecutive timed-out waits (waits back off
    /// exponentially from `budget.initial_wait` to `budget.max_wait`), the
    /// push gives up and reports the enqueued prefix with
    /// `gave_up == true`. Whatever was enqueued is still drainable, so
    /// `pushed` in [`stats`](Self::stats) always matches what the consumer
    /// can observe — a give-up loses the *tail*, never corrupts the prefix.
    pub fn push_batch_bounded(&self, items: &[Arrival], budget: &PushBudget) -> PushOutcome {
        self.push_impl(items, Some(budget))
    }

    fn push_impl(&self, items: &[Arrival], budget: Option<&PushBudget>) -> PushOutcome {
        let mut state = self.inner.lock().expect("ring poisoned");
        for (k, &item) in items.iter().enumerate() {
            // One backpressure *episode* per item that finds the ring full,
            // counted before waiting: the condvar can wake spuriously and
            // re-check, and those extra laps around the wait loop are not
            // additional episodes of consumer-side pressure.
            if state.queue.len() >= self.capacity && !state.closed {
                state.backpressure_waits += 1;
                match budget {
                    None => {
                        while state.queue.len() >= self.capacity && !state.closed {
                            state = self.not_full.wait(state).expect("ring poisoned");
                        }
                    }
                    Some(b) => {
                        let mut wait = b.initial_wait.max(Duration::from_micros(1));
                        let mut strikes = 0u32;
                        while state.queue.len() >= self.capacity && !state.closed {
                            if strikes >= b.max_waits {
                                return PushOutcome {
                                    pushed: k,
                                    gave_up: true,
                                };
                            }
                            let (st, timeout) = self
                                .not_full
                                .wait_timeout(state, wait)
                                .expect("ring poisoned");
                            state = st;
                            if timeout.timed_out() {
                                strikes += 1;
                                wait = (wait * 2).min(b.max_wait);
                            } else if state.queue.len() < self.capacity {
                                // Real progress: the consumer is alive, so
                                // the patience streak resets.
                                strikes = 0;
                                wait = b.initial_wait.max(Duration::from_micros(1));
                            }
                        }
                    }
                }
            }
            if state.closed {
                return PushOutcome {
                    pushed: k,
                    gave_up: false,
                };
            }
            state.queue.push_back(item);
            state.pushed += 1;
            // Wake the consumer as soon as anything is available; the
            // remaining items of this batch keep appending under the lock.
            if k == 0 || state.queue.len() == 1 {
                self.not_empty.notify_one();
            }
        }
        self.not_empty.notify_one();
        PushOutcome {
            pushed: items.len(),
            gave_up: false,
        }
    }

    /// Moves up to `max` arrivals into `buf` (appending), blocking while
    /// the ring is empty and still open. Returns `false` only when the
    /// ring is closed *and* drained — the stream is over.
    pub fn drain_into(&self, buf: &mut Vec<Arrival>, max: usize) -> bool {
        let mut state = self.inner.lock().expect("ring poisoned");
        while state.queue.is_empty() {
            if state.closed {
                return false;
            }
            state = self.not_empty.wait(state).expect("ring poisoned");
        }
        let take = max.max(1).min(state.queue.len());
        buf.extend(state.queue.drain(..take));
        self.not_full.notify_all();
        true
    }

    /// Marks the stream complete (idempotent): blocked producers give up,
    /// the consumer drains what remains and then stops.
    pub fn close(&self) {
        let mut state = self.inner.lock().expect("ring poisoned");
        state.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// `(arrivals pushed, producer blocking episodes)` so far.
    pub fn stats(&self) -> (u64, u64) {
        let state = self.inner.lock().expect("ring poisoned");
        (state.pushed, state.backpressure_waits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_survives_batching() {
        let ring = ArrivalRing::new(4);
        let items: Vec<Arrival> = (0..10).map(|i| (i % 3, i / 3)).collect();
        let ring = Arc::new(ring);
        let producer = {
            let ring = Arc::clone(&ring);
            let items = items.clone();
            std::thread::spawn(move || {
                for chunk in items.chunks(3) {
                    assert_eq!(ring.push_batch(chunk), chunk.len());
                }
                ring.close();
            })
        };
        let mut out = Vec::new();
        while ring.drain_into(&mut out, 2) {}
        producer.join().unwrap();
        assert_eq!(out, items);
        let (pushed, _) = ring.stats();
        assert_eq!(pushed, 10);
    }

    #[test]
    fn full_ring_blocks_producer_and_counts_backpressure() {
        let ring = Arc::new(ArrivalRing::new(1));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || ring.push_batch(&[(0, 0), (0, 1), (0, 2)]))
        };
        let mut out = Vec::new();
        while out.len() < 3 {
            assert!(ring.drain_into(&mut out, 1));
        }
        assert_eq!(producer.join().unwrap(), 3);
        let (pushed, waits) = ring.stats();
        assert_eq!(pushed, 3);
        // Items 2 and 3 each find the capacity-1 ring full exactly once:
        // episodes are counted per full-ring encounter, not per condvar
        // wakeup, so the count is exact even under spurious wakeups.
        assert_eq!(
            waits, 2,
            "capacity-1 ring must block the producer exactly twice"
        );
    }

    #[test]
    fn close_releases_everyone() {
        let ring = Arc::new(ArrivalRing::new(1));
        assert_eq!(ring.push_batch(&[(0, 0)]), 1);
        let blocked_producer = {
            let ring = Arc::clone(&ring);
            // Full ring: this blocks until close, then reports 0 pushed.
            std::thread::spawn(move || ring.push_batch(&[(0, 1)]))
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        ring.close();
        assert_eq!(blocked_producer.join().unwrap(), 0);
        let mut out = Vec::new();
        assert!(ring.drain_into(&mut out, 8), "queued item still drains");
        assert_eq!(out, vec![(0, 0)]);
        assert!(!ring.drain_into(&mut out, 8), "then the stream is over");
        assert_eq!(ring.push_batch(&[(0, 9)]), 0, "closed ring refuses pushes");
    }

    #[test]
    fn close_mid_batch_reports_the_drainable_prefix() {
        let ring = Arc::new(ArrivalRing::new(2));
        let producer = {
            let ring = Arc::clone(&ring);
            // Capacity 2, batch of 5: items 0 and 1 land, item 2 blocks.
            std::thread::spawn(move || ring.push_batch(&[(0, 0), (0, 1), (0, 2), (0, 3), (0, 4)]))
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        ring.close();
        let pushed = producer.join().unwrap();
        let mut out = Vec::new();
        while ring.drain_into(&mut out, 8) {}
        // The return value is the contract: exactly the enqueued prefix,
        // so the producer knows what the consumer can actually drain.
        assert_eq!(pushed, 2);
        assert_eq!(out, vec![(0, 0), (0, 1)]);
        assert_eq!(ring.stats().0, pushed as u64);
    }

    #[test]
    fn drain_after_close_on_an_empty_ring_terminates_immediately() {
        // The consumer's shutdown edge: nothing was ever pushed, the ring is
        // closed — drain_into must return false at once (no wait, no items)
        // and keep returning false on repeated calls.
        let ring = ArrivalRing::new(8);
        ring.close();
        let mut out = Vec::new();
        assert!(!ring.drain_into(&mut out, 16));
        assert!(!ring.drain_into(&mut out, 1));
        assert!(out.is_empty());
        let (pushed, waits) = ring.stats();
        assert_eq!((pushed, waits), (0, 0));
        // close is idempotent.
        ring.close();
        assert!(!ring.drain_into(&mut out, 16));
    }

    #[test]
    fn empty_batch_pushes_are_nops_on_open_and_closed_rings() {
        let ring = ArrivalRing::new(2);
        assert_eq!(ring.push_batch(&[]), 0);
        let out = ring.push_batch_bounded(&[], &PushBudget::default());
        assert_eq!(
            out,
            PushOutcome {
                pushed: 0,
                gave_up: false
            }
        );
        // Still a no-op after close — and it must not report a close-drop.
        ring.close();
        assert_eq!(ring.push_batch(&[]), 0);
        let out = ring.push_batch_bounded(&[], &PushBudget::default());
        assert!(!out.gave_up);
        let (pushed, waits) = ring.stats();
        assert_eq!((pushed, waits), (0, 0), "empty pushes touch no stats");
    }

    #[test]
    fn capacity_one_ring_with_bounded_pushes_stays_lossless_under_a_live_consumer() {
        // The blocking-producer edge at the tightest capacity, through the
        // bounded path: every push waits on a full ring, the consumer keeps
        // draining, and a generous budget never trips — FIFO order and
        // exact backpressure accounting both survive.
        let ring = Arc::new(ArrivalRing::new(1));
        let items: Vec<Arrival> = (0..40).map(|i| (i % 5, i / 5)).collect();
        let producer = {
            let ring = Arc::clone(&ring);
            let items = items.clone();
            std::thread::spawn(move || {
                let mut pushed = 0;
                for chunk in items.chunks(7) {
                    let out = ring.push_batch_bounded(chunk, &PushBudget::default());
                    assert!(!out.gave_up, "live consumer must never exhaust the budget");
                    pushed += out.pushed;
                }
                ring.close();
                pushed
            })
        };
        let mut out = Vec::new();
        while ring.drain_into(&mut out, 3) {}
        assert_eq!(producer.join().unwrap(), items.len());
        assert_eq!(out, items);
        let (pushed, waits) = ring.stats();
        assert_eq!(pushed, items.len() as u64);
        // Each item past the first bumps the episode counter at most once,
        // however often its wait loop wakes; whether it bumps at all is a
        // race against the consumer (the ring may already be drained), so
        // only the upper bound is deterministic.
        assert!(waits < items.len() as u64, "waits = {waits}");
    }

    #[test]
    fn bounded_push_gives_up_on_a_wedged_consumer_and_keeps_the_prefix_drainable() {
        let ring = ArrivalRing::new(2);
        let tight = PushBudget {
            initial_wait: Duration::from_micros(200),
            max_wait: Duration::from_millis(2),
            max_waits: 3,
        };
        // Nobody drains: items 0 and 1 land, item 2 exhausts the budget.
        let out = ring.push_batch_bounded(&[(0, 0), (0, 1), (0, 2), (0, 3)], &tight);
        assert_eq!(
            out,
            PushOutcome {
                pushed: 2,
                gave_up: true
            }
        );
        let (pushed, waits) = ring.stats();
        assert_eq!(pushed, 2, "stats agree with the drainable prefix");
        assert_eq!(waits, 1, "one backpressure episode, however many retries");
        // The prefix is intact and the ring still works.
        ring.close();
        let mut drained = Vec::new();
        while ring.drain_into(&mut drained, 8) {}
        assert_eq!(drained, vec![(0, 0), (0, 1)]);
    }

    #[test]
    fn bounded_push_reports_close_not_give_up_when_the_ring_closes() {
        let ring = Arc::new(ArrivalRing::new(1));
        assert_eq!(ring.push_batch(&[(0, 0)]), 1);
        let blocked = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let patient = PushBudget {
                    initial_wait: Duration::from_millis(1),
                    max_wait: Duration::from_millis(10),
                    max_waits: u32::MAX,
                };
                ring.push_batch_bounded(&[(0, 1)], &patient)
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        ring.close();
        let out = blocked.join().unwrap();
        assert_eq!(
            out,
            PushOutcome {
                pushed: 0,
                gave_up: false
            },
            "a closed ring is a normal end of stream, not a budget failure"
        );
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let ring = ArrivalRing::new(0);
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.push_batch(&[]), 0);
        ring.close();
        let mut out = Vec::new();
        assert!(!ring.drain_into(&mut out, 4));
        assert!(out.is_empty());
    }
}
