//! Snapshot publication: read engine state without stalling serve.
//!
//! Each tenant's engine lives behind a shard-owned lock for the whole
//! stream; letting metrics or bound checks take that lock would stall the
//! serve hot path. Instead the shard *publishes* a cheap
//! [`EngineSnapshot`] after every micro-batch it serves for the tenant,
//! and readers clone an `Arc` out of the slot under a lock held for a few
//! instructions — never the engine lock. Readers therefore see a
//! consistent, possibly slightly stale view (at most one micro-batch
//! behind), which is the documented freshness contract.

use omfl_core::algorithm::EngineSnapshot;
use std::sync::{Arc, Mutex, PoisonError};

/// A cloneable handle onto one tenant's latest published snapshot.
///
/// Clones share the same slot: handles taken before a serve run keep
/// observing it as shards publish. A handle outlives the server (the slot
/// is reference-counted); after the run it simply keeps returning the
/// final snapshot.
#[derive(Debug, Clone, Default)]
pub struct SnapshotHandle {
    slot: Arc<Mutex<Arc<EngineSnapshot>>>,
}

impl SnapshotHandle {
    /// A fresh handle holding the default (all-zero) snapshot — what a
    /// traffic-less tenant reports for the whole run.
    pub fn new() -> Self {
        Self::default()
    }

    /// The latest published snapshot. Cheap (one short lock, one `Arc`
    /// clone) and never blocks on the serve path.
    ///
    /// Poison-recovering: the critical section is a single pointer swap /
    /// clone, so a panic elsewhere can never leave the slot torn — a
    /// poisoned slot mutex still holds a whole `Arc` and is safe to keep
    /// using. Readers must never be the thing that takes a serve fleet
    /// down.
    pub fn read(&self) -> Arc<EngineSnapshot> {
        Arc::clone(&self.slot.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Publishes a new snapshot, replacing the previous one atomically
    /// from the readers' point of view. Poison-recovering, same argument
    /// as [`read`](Self::read).
    pub fn publish(&self, snap: EngineSnapshot) {
        *self.slot.lock().unwrap_or_else(PoisonError::into_inner) = Arc::new(snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_handle_reads_default() {
        let h = SnapshotHandle::new();
        assert_eq!(*h.read(), EngineSnapshot::default());
        assert_eq!(h.read().arrivals, 0);
        assert_eq!(h.read().total_cost(), 0.0);
    }

    #[test]
    fn clones_observe_publications() {
        let h = SnapshotHandle::new();
        let reader = h.clone();
        let old = reader.read();
        let snap = EngineSnapshot {
            arrivals: 3,
            facilities: 2,
            large_facilities: 1,
            construction_cost: 5.0,
            connection_cost: 1.5,
            dual_sum: 4.0,
            dual_lower_bound: 0.25,
            valid: true,
        };
        h.publish(snap);
        assert_eq!(*reader.read(), snap);
        // A snapshot taken before the publication is immutable.
        assert_eq!(*old, EngineSnapshot::default());
    }

    #[test]
    fn fresh_snapshots_are_valid_and_invalidation_is_visible() {
        let h = SnapshotHandle::new();
        assert!(h.read().valid, "the default snapshot is a valid state");
        let snap = EngineSnapshot {
            arrivals: 7,
            ..EngineSnapshot::default()
        };
        h.publish(snap);
        assert!(h.read().valid);
        // Quarantine republishes the last state with the flag cleared: the
        // numbers freeze at their pre-fault values, the flag says so.
        h.publish(h.read().invalidated());
        let frozen = h.read();
        assert!(!frozen.valid);
        assert_eq!(frozen.arrivals, 7);
    }
}
