//! Snapshot publication: read engine state without stalling serve.
//!
//! Each tenant's engine lives behind a shard-owned lock for the whole
//! stream; letting metrics or bound checks take that lock would stall the
//! serve hot path. Instead the shard *publishes* a cheap
//! [`EngineSnapshot`] after every micro-batch it serves for the tenant,
//! and readers clone an `Arc` out of the slot under a lock held for a few
//! instructions — never the engine lock. Readers therefore see a
//! consistent, possibly slightly stale view (at most one micro-batch
//! behind), which is the documented freshness contract.

use omfl_core::algorithm::EngineSnapshot;
use std::sync::{Arc, Mutex};

/// A cloneable handle onto one tenant's latest published snapshot.
///
/// Clones share the same slot: handles taken before a serve run keep
/// observing it as shards publish. A handle outlives the server (the slot
/// is reference-counted); after the run it simply keeps returning the
/// final snapshot.
#[derive(Debug, Clone, Default)]
pub struct SnapshotHandle {
    slot: Arc<Mutex<Arc<EngineSnapshot>>>,
}

impl SnapshotHandle {
    /// A fresh handle holding the default (all-zero) snapshot — what a
    /// traffic-less tenant reports for the whole run.
    pub fn new() -> Self {
        Self::default()
    }

    /// The latest published snapshot. Cheap (one short lock, one `Arc`
    /// clone) and never blocks on the serve path.
    pub fn read(&self) -> Arc<EngineSnapshot> {
        Arc::clone(&self.slot.lock().expect("snapshot slot poisoned"))
    }

    /// Publishes a new snapshot, replacing the previous one atomically
    /// from the readers' point of view.
    pub fn publish(&self, snap: EngineSnapshot) {
        *self.slot.lock().expect("snapshot slot poisoned") = Arc::new(snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_handle_reads_default() {
        let h = SnapshotHandle::new();
        assert_eq!(*h.read(), EngineSnapshot::default());
        assert_eq!(h.read().arrivals, 0);
        assert_eq!(h.read().total_cost(), 0.0);
    }

    #[test]
    fn clones_observe_publications() {
        let h = SnapshotHandle::new();
        let reader = h.clone();
        let old = reader.read();
        let snap = EngineSnapshot {
            arrivals: 3,
            facilities: 2,
            large_facilities: 1,
            construction_cost: 5.0,
            connection_cost: 1.5,
            dual_sum: 4.0,
            dual_lower_bound: 0.25,
        };
        h.publish(snap);
        assert_eq!(*reader.read(), snap);
        // A snapshot taken before the publication is immutable.
        assert_eq!(*old, EngineSnapshot::default());
    }
}
