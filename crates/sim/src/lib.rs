//! Network service-placement simulator — the paper's motivating scenario
//! (§1): "a provider of services in a network infrastructure" placing
//! service instances (VMs = facilities with configurations) close to
//! clients appearing online.
//!
//! The simulator wires together the workload generators, any of the online
//! placement engines, and latency/cost reporting. The run loop is a single
//! generic stream over a `&mut dyn OnlineAlgorithm` trait object
//! ([`with_engine`] builds the engine and its projections on the stack, so
//! no per-engine match duplicates the loop), with per-request metrics
//! accumulated incrementally by [`StreamingMetrics`].
//!
//! [`sweep`] fans a (scenario-family × engine × seed) matrix across worker
//! threads and aggregates comparison tables; see
//! `examples/scenario_sweep.rs` for a complete run.

pub mod sweep;

use omfl_baselines::all_large::{AllLarge, AllLargeParts};
use omfl_baselines::per_commodity::{PerCommodity, PerCommodityParts};
use omfl_commodity::cost::CostModel;
use omfl_core::algorithm::{OnlineAlgorithm, ServeOutcome};
use omfl_core::pd::PdOmflp;
use omfl_core::randalg::RandOmflp;
use omfl_core::solution::Solution;
use omfl_core::CoreError;
use omfl_par::seed_for;
use omfl_workload::composite::service_network;
use omfl_workload::demand::{default_bundles, DemandModel};
use omfl_workload::Scenario;
use std::sync::Arc;

/// Which placement engine drives the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Deterministic primal–dual PD-OMFLP.
    Pd,
    /// Randomized RAND-OMFLP with the given seed.
    Rand {
        /// RNG seed for the engine's coin flips.
        seed: u64,
    },
    /// Per-service decomposition (never predicts).
    PerCommodity,
    /// Large facilities only (always predicts).
    AllLarge,
}

impl Engine {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Pd => "pd-omflp",
            Engine::Rand { .. } => "rand-omflp",
            Engine::PerCommodity => "per-commodity",
            Engine::AllLarge => "all-large",
        }
    }

    /// The four engines, in report order, with a shared seed for the
    /// randomized one.
    pub fn all(rand_seed: u64) -> [Engine; 4] {
        [
            Engine::Pd,
            Engine::Rand { seed: rand_seed },
            Engine::PerCommodity,
            Engine::AllLarge,
        ]
    }
}

/// Simulation configuration: topology, services, demand and cost shape.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Network nodes.
    pub nodes: usize,
    /// Extra chords beyond the spanning chain.
    pub extra_edges: usize,
    /// Number of services `|S|` (≥ 8 to use the default bundle catalogue).
    pub services: u16,
    /// Number of client requests.
    pub requests: usize,
    /// Fixed VM set-up cost.
    pub vm_base_cost: f64,
    /// Per-service installation cost.
    pub per_service_cost: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            nodes: 40,
            extra_edges: 30,
            services: 8,
            requests: 200,
            vm_base_cost: 6.0,
            per_service_cost: 0.75,
            seed: 42,
        }
    }
}

/// Per-request latency (connection cost) statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Mean connection cost per request.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Worst request.
    pub max: f64,
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Engine used.
    pub engine: &'static str,
    /// Scenario name.
    pub scenario: String,
    /// Requests served.
    pub requests: usize,
    /// Total cost (construction + connection).
    pub total_cost: f64,
    /// Construction part.
    pub construction_cost: f64,
    /// Connection part.
    pub connection_cost: f64,
    /// Number of facilities opened / of them large.
    pub facilities: usize,
    /// Facilities offering every service.
    pub large_facilities: usize,
    /// Requests served by a single large facility (the paper's "large"
    /// serve mode — Figure 3 tracks this over time).
    pub large_serves: usize,
    /// Client latency statistics.
    pub latency: LatencyStats,
    /// Cumulative total cost after each request (for cost-over-time plots).
    pub cost_over_time: Vec<f64>,
}

/// Incrementally accumulated per-request metrics: one [`observe`] per
/// served request (O(1) amortized), one [`finish`] at the end.
///
/// [`observe`]: StreamingMetrics::observe
/// [`finish`]: StreamingMetrics::finish
#[derive(Debug, Default)]
pub struct StreamingMetrics {
    latencies: Vec<f64>,
    cost_over_time: Vec<f64>,
    large_serves: usize,
}

impl StreamingMetrics {
    /// Preallocates for a stream of `n` requests.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            latencies: Vec::with_capacity(n),
            cost_over_time: Vec::with_capacity(n),
            large_serves: 0,
        }
    }

    /// Records one served request, given its outcome and the running total
    /// cost after it.
    pub fn observe(&mut self, out: &ServeOutcome, total_cost_after: f64) {
        self.latencies.push(out.connection_cost);
        self.cost_over_time.push(total_cost_after);
        self.large_serves += usize::from(out.served_by_large);
    }

    /// Assembles the final report from the accumulated stream and the
    /// engine's finished solution.
    pub fn finish(mut self, engine: Engine, scenario: &Scenario, sol: &Solution) -> SimReport {
        SimReport {
            engine: engine.name(),
            scenario: scenario.name.clone(),
            requests: self.cost_over_time.len(),
            total_cost: sol.total_cost(),
            construction_cost: sol.construction_cost(),
            connection_cost: sol.connection_cost(),
            facilities: sol.facilities().len(),
            large_facilities: sol.num_large_facilities(),
            large_serves: self.large_serves,
            latency: latency_stats(&mut self.latencies),
            cost_over_time: self.cost_over_time,
        }
    }
}

/// Builds the scenario described by a [`SimConfig`].
pub fn build_scenario(cfg: &SimConfig) -> Result<Scenario, CoreError> {
    let demand = DemandModel::Bundles {
        bundles: default_bundles(cfg.services),
        noise: 0.15,
    };
    let cost = CostModel::affine(cfg.services, cfg.vm_base_cost, cfg.per_service_cost);
    service_network(
        cfg.nodes,
        cfg.extra_edges,
        cfg.requests,
        demand,
        cost,
        cfg.seed,
    )
}

/// Builds the engine (and, for the baselines, its projected sub-instances)
/// for a scenario and hands it to `f` as a trait object.
///
/// This is the only place that knows how to construct each engine; every
/// consumer — the streaming run loop, the sweep harness, ad-hoc drivers —
/// shares one generic loop over `&mut dyn OnlineAlgorithm` instead of
/// duplicating a per-engine match.
pub fn with_engine<R>(
    scenario: &Scenario,
    engine: Engine,
    f: impl FnOnce(&mut dyn OnlineAlgorithm) -> Result<R, CoreError>,
) -> Result<R, CoreError> {
    match engine {
        Engine::Pd => f(&mut PdOmflp::new(scenario.instance())),
        Engine::Rand { seed } => f(&mut RandOmflp::new(scenario.instance(), seed)),
        Engine::PerCommodity => {
            let parts =
                PerCommodityParts::build(Arc::clone(&scenario.metric), scenario.cost.clone())?;
            f(&mut PerCommodity::new_pd(&parts))
        }
        Engine::AllLarge => {
            let parts = AllLargeParts::build(Arc::clone(&scenario.metric), scenario.cost.clone())?;
            f(&mut AllLarge::new_fotakis(&parts)?)
        }
    }
}

/// Boxes an engine that borrows only the scenario — the long-lived-tenant
/// constructor the serve layer uses (a tenant owns its engine for the whole
/// stream, so the scoped [`with_engine`] closure shape does not fit).
///
/// The projected baselines (per-commodity, all-large) build owned
/// sub-instances the boxed engine would have to borrow from, so they return
/// `None` here; [`with_engine`] remains the constructor covering all four.
/// A caller that wants a boxed baseline can build the parts itself in an
/// enclosing scope and box the engine borrowing them.
pub fn boxed_engine<'a>(
    scenario: &'a Scenario,
    engine: Engine,
) -> Option<Box<dyn OnlineAlgorithm + Send + 'a>> {
    match engine {
        Engine::Pd => Some(Box::new(PdOmflp::new(scenario.instance()))),
        Engine::Rand { seed } => Some(Box::new(RandOmflp::new(scenario.instance(), seed))),
        Engine::PerCommodity | Engine::AllLarge => None,
    }
}

/// A deterministic multi-tenant arrival source: the canonical interleaving
/// of many request streams, yielded as `(tenant, request index)` pairs in
/// micro-batches — the streaming replacement for iterating each scenario's
/// `Vec<Request>`, built to feed a serve layer's ring buffer.
///
/// Invariants: each tenant's indices appear exactly once and in ascending
/// order (a tenant's engine must see its own stream in arrival order), and
/// the whole interleaving is a pure function of the tenant lengths (and
/// seed), never of thread scheduling — so any consumer that preserves
/// per-tenant order reproduces bit-identical per-tenant results no matter
/// how the batches are cut.
#[derive(Debug, Clone)]
pub struct ArrivalSource {
    order: Vec<(u32, u32)>,
    next: usize,
}

impl ArrivalSource {
    /// Strict round-robin over the tenants (skipping exhausted ones): the
    /// fairest deterministic schedule, and the default for benches.
    pub fn round_robin(tenant_lens: &[usize]) -> Self {
        let total: usize = tenant_lens.iter().sum();
        let mut order = Vec::with_capacity(total);
        let mut cursor = vec![0usize; tenant_lens.len()];
        while order.len() < total {
            for (t, len) in tenant_lens.iter().enumerate() {
                if cursor[t] < *len {
                    order.push((t as u32, cursor[t] as u32));
                    cursor[t] += 1;
                }
            }
        }
        Self { order, next: 0 }
    }

    /// A seeded weighted-random merge (SplitMix64 via `omfl_par::seed_for`):
    /// each step draws a tenant with probability proportional to its
    /// remaining arrivals — bursty, uneven interleavings for adversarial
    /// tests, still a pure function of `(tenant_lens, seed)`.
    pub fn interleaved(tenant_lens: &[usize], seed: u64) -> Self {
        let total: usize = tenant_lens.iter().sum();
        let mut order = Vec::with_capacity(total);
        let mut remaining: Vec<usize> = tenant_lens.to_vec();
        let mut cursor = vec![0usize; tenant_lens.len()];
        let mut left = total;
        for step in 0..total as u64 {
            let mut r = (seed_for(seed, step) % left as u64) as usize;
            let t = remaining
                .iter()
                .position(|&rem| {
                    if r < rem {
                        true
                    } else {
                        r -= rem;
                        false
                    }
                })
                .expect("left == sum(remaining)");
            order.push((t as u32, cursor[t] as u32));
            cursor[t] += 1;
            remaining[t] -= 1;
            left -= 1;
        }
        Self { order, next: 0 }
    }

    /// Total arrivals in the stream.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the stream holds no arrivals at all.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Arrivals not yet yielded.
    pub fn remaining(&self) -> usize {
        self.order.len() - self.next
    }

    /// Yields the next micro-batch of up to `max` arrivals (empty once the
    /// stream is exhausted; `max = 0` is an explicit empty batch).
    pub fn next_batch(&mut self, max: usize) -> &[(u32, u32)] {
        let start = self.next;
        let end = (start + max).min(self.order.len());
        self.next = end;
        &self.order[start..end]
    }

    /// The full canonical order (for consumers that want to feed a ring
    /// from a producer thread at their own pace).
    pub fn order(&self) -> &[(u32, u32)] {
        &self.order
    }
}

/// Runs one engine over a scenario and collects the report. The finished
/// solution is verified against the instance — an infeasible run surfaces
/// as an error, never as a silently wrong table row.
pub fn run_engine(scenario: &Scenario, engine: Engine) -> Result<SimReport, CoreError> {
    with_engine(scenario, engine, |alg| {
        let mut metrics = StreamingMetrics::with_capacity(scenario.len());
        for r in &scenario.requests {
            let out = alg.serve(r)?;
            metrics.observe(&out, alg.solution().total_cost());
        }
        alg.solution().verify(scenario.instance())?;
        Ok(metrics.finish(engine, scenario, alg.solution()))
    })
}

/// Convenience: build the scenario and run one engine.
pub fn run_simulation(cfg: &SimConfig, engine: Engine) -> Result<SimReport, CoreError> {
    let scenario = build_scenario(cfg)?;
    run_engine(&scenario, engine)
}

fn latency_stats(latencies: &mut [f64]) -> LatencyStats {
    if latencies.is_empty() {
        return LatencyStats {
            mean: 0.0,
            p50: 0.0,
            p95: 0.0,
            max: 0.0,
        };
    }
    let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q = |p: f64| {
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx]
    };
    LatencyStats {
        mean,
        p50: q(0.5),
        p95: q(0.95),
        max: *latencies.last().expect("non-empty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SimConfig {
        SimConfig {
            nodes: 15,
            extra_edges: 10,
            services: 8,
            requests: 60,
            ..SimConfig::default()
        }
    }

    #[test]
    fn all_engines_produce_feasible_reports() {
        let cfg = small_cfg();
        let scenario = build_scenario(&cfg).unwrap();
        for engine in Engine::all(1) {
            let rep = run_engine(&scenario, engine).unwrap();
            assert_eq!(rep.cost_over_time.len(), 60);
            assert_eq!(rep.requests, 60);
            assert!(rep.total_cost > 0.0, "{}", rep.engine);
            assert!((rep.total_cost - (rep.construction_cost + rep.connection_cost)).abs() < 1e-9);
            assert!(rep.facilities >= 1);
            assert!(rep.large_serves <= rep.requests);
            // Cumulative cost is non-decreasing.
            assert!(rep.cost_over_time.windows(2).all(|w| w[1] >= w[0] - 1e-9));
            assert!(rep.latency.max >= rep.latency.p95);
            assert!(rep.latency.p95 >= rep.latency.p50);
        }
    }

    #[test]
    fn serve_mode_extremes_match_their_engines() {
        let scenario = build_scenario(&small_cfg()).unwrap();
        let all_large = run_engine(&scenario, Engine::AllLarge).unwrap();
        assert_eq!(
            all_large.large_serves, all_large.requests,
            "all-large always predicts"
        );
        let per_com = run_engine(&scenario, Engine::PerCommodity).unwrap();
        assert_eq!(per_com.large_serves, 0, "per-commodity never predicts");
        assert_eq!(per_com.large_facilities, 0);
    }

    #[test]
    fn with_engine_streams_through_a_trait_object() {
        // The generic loop sees only `dyn OnlineAlgorithm`; drive a partial
        // stream manually and check the engine identity comes through.
        let scenario = build_scenario(&small_cfg()).unwrap();
        let name = with_engine(&scenario, Engine::Pd, |alg| {
            for r in scenario.requests.iter().take(5) {
                alg.serve(r)?;
            }
            assert_eq!(alg.solution().num_requests(), 5);
            Ok(alg.name())
        })
        .unwrap();
        assert_eq!(name, "pd-omflp");
    }

    #[test]
    fn pd_beats_both_extremes_on_bundle_workload() {
        // With bundle demands and affine costs, joint facilities matter:
        // PD should beat the never-predict decomposition; the always-predict
        // baseline wastes per-service cost on narrow requests.
        let cfg = SimConfig {
            requests: 150,
            ..small_cfg()
        };
        let scenario = build_scenario(&cfg).unwrap();
        let pd = run_engine(&scenario, Engine::Pd).unwrap().total_cost;
        let decomp = run_engine(&scenario, Engine::PerCommodity)
            .unwrap()
            .total_cost;
        assert!(
            pd < decomp,
            "PD ({pd}) should beat per-commodity decomposition ({decomp}) on bundles"
        );
    }

    #[test]
    fn deterministic_given_config() {
        let cfg = small_cfg();
        let a = run_simulation(&cfg, Engine::Pd).unwrap();
        let b = run_simulation(&cfg, Engine::Pd).unwrap();
        assert_eq!(a, b, "same config must reproduce the identical report");
    }

    #[test]
    fn latency_stats_on_known_sample() {
        let mut xs = vec![4.0, 1.0, 2.0, 3.0];
        let s = latency_stats(&mut xs);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.max, 4.0);
        assert!(s.p50 >= 2.0 && s.p50 <= 3.0);
    }

    #[test]
    fn boxed_engine_matches_scoped_engine() {
        // The long-lived constructor must drive the same stream to the same
        // solution as the scoped `with_engine` path.
        let scenario = build_scenario(&small_cfg()).unwrap();
        for engine in [Engine::Pd, Engine::Rand { seed: 7 }] {
            let mut boxed = boxed_engine(&scenario, engine).unwrap();
            for r in &scenario.requests {
                boxed.serve(r).unwrap();
            }
            let scoped = run_engine(&scenario, engine).unwrap();
            assert_eq!(boxed.solution().total_cost(), scoped.total_cost);
            assert_eq!(boxed.snapshot().arrivals, scenario.requests.len());
        }
        // Projected baselines borrow owned parts and are not boxable here.
        assert!(boxed_engine(&scenario, Engine::PerCommodity).is_none());
        assert!(boxed_engine(&scenario, Engine::AllLarge).is_none());
    }

    /// Every tenant's indices must appear exactly once, in ascending order.
    fn assert_canonical(src: &ArrivalSource, lens: &[usize]) {
        let mut next = vec![0u32; lens.len()];
        for &(t, i) in src.order() {
            assert_eq!(i, next[t as usize], "tenant {t} stream out of order");
            next[t as usize] += 1;
        }
        for (t, len) in lens.iter().enumerate() {
            assert_eq!(next[t] as usize, *len, "tenant {t} incomplete");
        }
    }

    #[test]
    fn arrival_source_round_robin_is_canonical() {
        let lens = [3usize, 0, 5, 1];
        let src = ArrivalSource::round_robin(&lens);
        assert_canonical(&src, &lens);
        assert_eq!(src.len(), 9);
        // Round-robin interleaves fairly: first cycle hits each live tenant.
        assert_eq!(&src.order()[..3], &[(0, 0), (2, 0), (3, 0)]);
    }

    #[test]
    fn arrival_source_interleaved_is_canonical_and_seeded() {
        let lens = [4usize, 7, 0, 2, 9];
        let a = ArrivalSource::interleaved(&lens, 11);
        let b = ArrivalSource::interleaved(&lens, 11);
        let c = ArrivalSource::interleaved(&lens, 12);
        assert_canonical(&a, &lens);
        assert_eq!(a.order(), b.order(), "same seed, same interleaving");
        assert_ne!(a.order(), c.order(), "different seed should reshuffle");
    }

    #[test]
    fn arrival_source_batches_cover_the_stream_once() {
        let lens = [5usize, 3];
        let mut src = ArrivalSource::round_robin(&lens);
        let full: Vec<_> = src.order().to_vec();
        let mut seen = Vec::new();
        assert!(src.next_batch(0).is_empty(), "max = 0 is an empty batch");
        while src.remaining() > 0 {
            let batch: Vec<_> = src.next_batch(3).to_vec();
            assert!(!batch.is_empty());
            seen.extend(batch);
        }
        assert_eq!(seen, full);
        assert!(src.next_batch(3).is_empty(), "exhausted source stays empty");
        assert!(ArrivalSource::round_robin(&[]).is_empty());
    }
}
