//! Network service-placement simulator — the paper's motivating scenario
//! (§1): "a provider of services in a network infrastructure" placing
//! service instances (VMs = facilities with configurations) close to
//! clients appearing online.
//!
//! The simulator wires together the workload generators, any of the online
//! placement engines, and latency/cost reporting, so downstream users can
//! evaluate placement policies on their own topologies. See
//! `examples/service_placement.rs` for a complete run.

use omfl_baselines::all_large::{AllLarge, AllLargeParts};
use omfl_baselines::per_commodity::{PerCommodity, PerCommodityParts};
use omfl_commodity::cost::CostModel;
use omfl_core::algorithm::OnlineAlgorithm;
use omfl_core::pd::PdOmflp;
use omfl_core::randalg::RandOmflp;
use omfl_core::CoreError;
use omfl_workload::composite::service_network;
use omfl_workload::demand::{default_bundles, DemandModel};
use omfl_workload::Scenario;
use std::sync::Arc;

/// Which placement engine drives the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Deterministic primal–dual PD-OMFLP.
    Pd,
    /// Randomized RAND-OMFLP with the given seed.
    Rand {
        /// RNG seed for the engine's coin flips.
        seed: u64,
    },
    /// Per-service decomposition (never predicts).
    PerCommodity,
    /// Large facilities only (always predicts).
    AllLarge,
}

impl Engine {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Pd => "pd-omflp",
            Engine::Rand { .. } => "rand-omflp",
            Engine::PerCommodity => "per-commodity",
            Engine::AllLarge => "all-large",
        }
    }
}

/// Simulation configuration: topology, services, demand and cost shape.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Network nodes.
    pub nodes: usize,
    /// Extra chords beyond the spanning chain.
    pub extra_edges: usize,
    /// Number of services `|S|` (≥ 8 to use the default bundle catalogue).
    pub services: u16,
    /// Number of client requests.
    pub requests: usize,
    /// Fixed VM set-up cost.
    pub vm_base_cost: f64,
    /// Per-service installation cost.
    pub per_service_cost: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            nodes: 40,
            extra_edges: 30,
            services: 8,
            requests: 200,
            vm_base_cost: 6.0,
            per_service_cost: 0.75,
            seed: 42,
        }
    }
}

/// Per-request latency (connection cost) statistics.
#[derive(Debug, Clone, Copy)]
pub struct LatencyStats {
    /// Mean connection cost per request.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Worst request.
    pub max: f64,
}

/// The outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Engine used.
    pub engine: &'static str,
    /// Scenario name.
    pub scenario: String,
    /// Total cost (construction + connection).
    pub total_cost: f64,
    /// Construction part.
    pub construction_cost: f64,
    /// Connection part.
    pub connection_cost: f64,
    /// Number of facilities opened / of them large.
    pub facilities: usize,
    /// Facilities offering every service.
    pub large_facilities: usize,
    /// Client latency statistics.
    pub latency: LatencyStats,
    /// Cumulative total cost after each request (for cost-over-time plots).
    pub cost_over_time: Vec<f64>,
}

/// Builds the scenario described by a [`SimConfig`].
pub fn build_scenario(cfg: &SimConfig) -> Result<Scenario, CoreError> {
    let demand = DemandModel::Bundles {
        bundles: default_bundles(cfg.services),
        noise: 0.15,
    };
    let cost = CostModel::affine(cfg.services, cfg.vm_base_cost, cfg.per_service_cost);
    service_network(
        cfg.nodes,
        cfg.extra_edges,
        cfg.requests,
        demand,
        cost,
        cfg.seed,
    )
}

/// Runs one engine over a scenario and collects the report.
pub fn run_engine(scenario: &Scenario, engine: Engine) -> Result<SimReport, CoreError> {
    let inst = scenario.instance();
    let mut latencies = Vec::with_capacity(scenario.len());
    let mut cost_over_time = Vec::with_capacity(scenario.len());

    // Each arm owns its algorithm (and, for the baselines, the projected
    // sub-instances), so the match drives the whole run.
    let sol = match engine {
        Engine::Pd => {
            let mut alg = PdOmflp::new(inst);
            for r in &scenario.requests {
                let out = alg.serve(r)?;
                latencies.push(out.connection_cost);
                cost_over_time.push(alg.solution().total_cost());
            }
            alg.solution().clone()
        }
        Engine::Rand { seed } => {
            let mut alg = RandOmflp::new(inst, seed);
            for r in &scenario.requests {
                let out = alg.serve(r)?;
                latencies.push(out.connection_cost);
                cost_over_time.push(alg.solution().total_cost());
            }
            alg.solution().clone()
        }
        Engine::PerCommodity => {
            let parts =
                PerCommodityParts::build(Arc::clone(&scenario.metric), scenario.cost.clone())?;
            let mut alg = PerCommodity::new_pd(&parts);
            for r in &scenario.requests {
                let out = alg.serve(r)?;
                latencies.push(out.connection_cost);
                cost_over_time.push(alg.solution().total_cost());
            }
            alg.solution().clone()
        }
        Engine::AllLarge => {
            let parts = AllLargeParts::build(Arc::clone(&scenario.metric), scenario.cost.clone())?;
            let mut alg = AllLarge::new_fotakis(&parts)?;
            for r in &scenario.requests {
                let out = alg.serve(r)?;
                latencies.push(out.connection_cost);
                cost_over_time.push(alg.solution().total_cost());
            }
            alg.solution().clone()
        }
    };
    sol.verify(inst)?;

    Ok(SimReport {
        engine: engine.name(),
        scenario: scenario.name.clone(),
        total_cost: sol.total_cost(),
        construction_cost: sol.construction_cost(),
        connection_cost: sol.connection_cost(),
        facilities: sol.facilities().len(),
        large_facilities: sol.num_large_facilities(),
        latency: latency_stats(&mut latencies),
        cost_over_time,
    })
}

/// Convenience: build the scenario and run one engine.
pub fn run_simulation(cfg: &SimConfig, engine: Engine) -> Result<SimReport, CoreError> {
    let scenario = build_scenario(cfg)?;
    run_engine(&scenario, engine)
}

fn latency_stats(latencies: &mut [f64]) -> LatencyStats {
    if latencies.is_empty() {
        return LatencyStats {
            mean: 0.0,
            p50: 0.0,
            p95: 0.0,
            max: 0.0,
        };
    }
    let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q = |p: f64| {
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx]
    };
    LatencyStats {
        mean,
        p50: q(0.5),
        p95: q(0.95),
        max: *latencies.last().expect("non-empty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SimConfig {
        SimConfig {
            nodes: 15,
            extra_edges: 10,
            services: 8,
            requests: 60,
            ..SimConfig::default()
        }
    }

    #[test]
    fn all_engines_produce_feasible_reports() {
        let cfg = small_cfg();
        let scenario = build_scenario(&cfg).unwrap();
        for engine in [
            Engine::Pd,
            Engine::Rand { seed: 1 },
            Engine::PerCommodity,
            Engine::AllLarge,
        ] {
            let rep = run_engine(&scenario, engine).unwrap();
            assert_eq!(rep.cost_over_time.len(), 60);
            assert!(rep.total_cost > 0.0, "{}", rep.engine);
            assert!((rep.total_cost - (rep.construction_cost + rep.connection_cost)).abs() < 1e-9);
            assert!(rep.facilities >= 1);
            // Cumulative cost is non-decreasing.
            assert!(rep.cost_over_time.windows(2).all(|w| w[1] >= w[0] - 1e-9));
            assert!(rep.latency.max >= rep.latency.p95);
            assert!(rep.latency.p95 >= rep.latency.p50);
        }
    }

    #[test]
    fn pd_beats_both_extremes_on_bundle_workload() {
        // With bundle demands and affine costs, joint facilities matter:
        // PD should beat the never-predict decomposition; the always-predict
        // baseline wastes per-service cost on narrow requests.
        let cfg = SimConfig {
            requests: 150,
            ..small_cfg()
        };
        let scenario = build_scenario(&cfg).unwrap();
        let pd = run_engine(&scenario, Engine::Pd).unwrap().total_cost;
        let decomp = run_engine(&scenario, Engine::PerCommodity)
            .unwrap()
            .total_cost;
        assert!(
            pd < decomp,
            "PD ({pd}) should beat per-commodity decomposition ({decomp}) on bundles"
        );
    }

    #[test]
    fn deterministic_given_config() {
        let cfg = small_cfg();
        let a = run_simulation(&cfg, Engine::Pd).unwrap();
        let b = run_simulation(&cfg, Engine::Pd).unwrap();
        assert_eq!(a.total_cost, b.total_cost);
        assert_eq!(a.facilities, b.facilities);
    }

    #[test]
    fn latency_stats_on_known_sample() {
        let mut xs = vec![4.0, 1.0, 2.0, 3.0];
        let s = latency_stats(&mut xs);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.max, 4.0);
        assert!(s.p50 >= 2.0 && s.p50 <= 3.0);
    }
}
