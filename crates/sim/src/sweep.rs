//! Sharded (scenario-family × engine × seed) sweeps.
//!
//! [`sweep`] flattens the full matrix into independent cells, fans them
//! across worker threads with `omfl_par::parallel_map` (order-preserving,
//! chunk-static — results never depend on thread scheduling), and
//! [`aggregate`]s the cells into a per-(family, engine) comparison table.
//! Scenario seeds derive from `(base_seed, family, trial)` via
//! `omfl_par::seed_for`, so every engine sees the *same* instance in trial
//! `t` and the whole table is bit-identical across runs and thread counts.
//!
//! The table's text and CSV renderings are consumed by the `catalog-sweep`
//! experiment in `omfl-bench` and by `examples/scenario_sweep.rs` (which
//! commits the canonical CSV under `results/`).

use crate::{run_engine, Engine, SimReport};
use omfl_core::CoreError;
use omfl_par::{parallel_map, seed_for, summarize, Summary};
use omfl_workload::catalog;
use omfl_workload::catalog::{CatalogProfile, Family};

/// One completed cell of the sweep matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Family name (stable across parameterizations).
    pub family: &'static str,
    /// Engine name.
    pub engine: &'static str,
    /// The scenario seed this cell was built with.
    pub seed: u64,
    /// The full simulation report.
    pub report: SimReport,
}

/// A (family, engine) row aggregated over its trials.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Family name.
    pub family: &'static str,
    /// Engine name.
    pub engine: &'static str,
    /// Total-cost statistics over the trials.
    pub cost: Summary,
    /// Mean number of facilities opened.
    pub mean_facilities: f64,
    /// Mean number of large facilities.
    pub mean_large: f64,
    /// Mean fraction of requests served by a large facility.
    pub large_serve_share: f64,
    /// Mean p95 connection latency.
    pub mean_p95_latency: f64,
}

/// The aggregated sweep: rows in (family, engine) first-seen order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTable {
    /// Aggregated rows.
    pub rows: Vec<SweepRow>,
}

/// The shared matrix plumbing behind [`sweep`] and [`timed_sweep`]: one
/// task per (family, trial) — the scenario is engine-independent, so each
/// worker builds it once and runs every engine through it — then
/// reassembly into deterministic matrix order (family-major, then engine,
/// then trial) regardless of thread count. The scenario seed for trial `t`
/// of family `i` is `seed_for(base_seed, i·2³² + t)`, independent of the
/// engine, so all engines compete on identical instances. Keeping this in
/// one place guarantees a timed run measures exactly the cells a regular
/// sweep produces.
fn run_matrix<C: Clone + Send>(
    families: &[Family],
    profile: &CatalogProfile,
    engines: &[Engine],
    base_seed: u64,
    trials: usize,
    threads: usize,
    cell: impl Fn(&Family, &crate::Scenario, Engine, u64) -> Result<C, CoreError> + Sync,
) -> Result<Vec<C>, CoreError> {
    let mut tasks = Vec::with_capacity(families.len() * trials);
    for fi in 0..families.len() {
        for t in 0..trials as u64 {
            tasks.push((fi, t));
        }
    }
    let groups = parallel_map(&tasks, threads, |_, &(fi, t)| {
        let seed = seed_for(base_seed, ((fi as u64) << 32) | t);
        let scenario = families[fi].build(profile, seed)?;
        engines
            .iter()
            .map(|&engine| cell(&families[fi], &scenario, engine, seed))
            .collect::<Result<Vec<C>, CoreError>>()
    });
    let groups = groups.into_iter().collect::<Result<Vec<_>, _>>()?;
    let mut cells = Vec::with_capacity(families.len() * engines.len() * trials);
    for fi in 0..families.len() {
        for (ei, _) in engines.iter().enumerate() {
            for t in 0..trials {
                cells.push(groups[fi * trials + t][ei].clone());
            }
        }
    }
    Ok(cells)
}

/// Runs the full matrix: every family × every engine × `trials` seeds,
/// sharded over `threads` worker threads.
///
/// Cell order and seed derivation are documented on the shared matrix
/// runner; all engines in a trial see the identical instance.
pub fn sweep(
    families: &[Family],
    profile: &CatalogProfile,
    engines: &[Engine],
    base_seed: u64,
    trials: usize,
    threads: usize,
) -> Result<Vec<SweepCell>, CoreError> {
    run_matrix(
        families,
        profile,
        engines,
        base_seed,
        trials,
        threads,
        |fam, scenario, engine, seed| {
            Ok(SweepCell {
                family: fam.name,
                engine: engine.name(),
                seed,
                report: run_engine(scenario, engine)?,
            })
        },
    )
}

/// One timed cell of the sweep matrix: the wall-clock of a full
/// `run_engine` call on one (family, engine, seed) triple.
///
/// Timing is deliberately kept *out* of [`SweepCell`]: cells are compared
/// bit-identically by the determinism suite and aggregated into the
/// canonical CSV, and wall-clock is the one field that can never reproduce.
/// The bench runner's `--emit-json` path consumes these instead.
#[derive(Debug, Clone)]
pub struct TimedCell {
    /// Family name.
    pub family: &'static str,
    /// Engine name.
    pub engine: &'static str,
    /// Scenario seed.
    pub seed: u64,
    /// Wall-clock seconds of the full serve stream (excluding scenario
    /// construction, including final verification).
    pub secs: f64,
}

/// Runs the same matrix as [`sweep`] but records per-cell wall-clock
/// instead of reports. Built on the shared matrix runner, so cell order
/// and scenario seeds are identical to [`sweep`] by construction — a timed
/// run measures exactly the work a regular sweep would do.
pub fn timed_sweep(
    families: &[Family],
    profile: &CatalogProfile,
    engines: &[Engine],
    base_seed: u64,
    trials: usize,
    threads: usize,
) -> Result<Vec<TimedCell>, CoreError> {
    run_matrix(
        families,
        profile,
        engines,
        base_seed,
        trials,
        threads,
        |fam, scenario, engine, seed| {
            let t0 = std::time::Instant::now();
            run_engine(scenario, engine)?;
            Ok(TimedCell {
                family: fam.name,
                engine: engine.name(),
                seed,
                secs: t0.elapsed().as_secs_f64(),
            })
        },
    )
}

/// Groups cells into per-(family, engine) rows, preserving first-seen order.
pub fn aggregate(cells: &[SweepCell]) -> SweepTable {
    let mut keys: Vec<(&'static str, &'static str)> = Vec::new();
    for c in cells {
        let k = (c.family, c.engine);
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    let rows = keys
        .into_iter()
        .map(|(family, engine)| {
            let group: Vec<&SweepCell> = cells
                .iter()
                .filter(|c| c.family == family && c.engine == engine)
                .collect();
            let costs: Vec<f64> = group.iter().map(|c| c.report.total_cost).collect();
            let n = group.len() as f64;
            let mean = |f: &dyn Fn(&SimReport) -> f64| -> f64 {
                group.iter().map(|c| f(&c.report)).sum::<f64>() / n
            };
            SweepRow {
                family,
                engine,
                cost: summarize(&costs),
                mean_facilities: mean(&|r| r.facilities as f64),
                mean_large: mean(&|r| r.large_facilities as f64),
                large_serve_share: mean(&|r| r.large_serves as f64 / (r.requests.max(1)) as f64),
                mean_p95_latency: mean(&|r| r.latency.p95),
            }
        })
        .collect();
    SweepTable { rows }
}

/// Convenience: the whole catalog against all four engines, aggregated.
pub fn sweep_catalog(
    profile: &CatalogProfile,
    base_seed: u64,
    trials: usize,
    threads: usize,
) -> Result<SweepTable, CoreError> {
    let families = catalog::registry();
    let engines = Engine::all(seed_for(base_seed, u64::MAX));
    let cells = sweep(&families, profile, &engines, base_seed, trials, threads)?;
    Ok(aggregate(&cells))
}

impl SweepTable {
    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let headers = [
            "family",
            "engine",
            "trials",
            "mean cost",
            "ci95",
            "min",
            "max",
            "facs",
            "large",
            "lg-serve",
            "p95 lat",
        ];
        let cells: Vec<Vec<String>> = self.rows.iter().map(row_cells).collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| {
                    if i == 0 {
                        format!("{:<width$}", c, width = widths[i])
                    } else {
                        format!("{:>width$}", c, width = widths[i])
                    }
                })
                .collect::<Vec<_>>()
                .join("  ")
                + "\n"
        };
        let mut out = line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &cells {
            out.push_str(&line(row));
        }
        out
    }

    /// CSV form with a stable schema (the committed canonical results file
    /// under `results/` uses exactly this).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "family,engine,trials,mean_cost,ci95,min_cost,max_cost,\
             mean_facilities,mean_large,large_serve_share,mean_p95_latency\n",
        );
        for row in self.rows.iter().map(row_cells) {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

fn row_cells(r: &SweepRow) -> Vec<String> {
    vec![
        r.family.to_string(),
        r.engine.to_string(),
        r.cost.n.to_string(),
        fmt(r.cost.mean),
        fmt(r.cost.ci95),
        fmt(r.cost.min),
        fmt(r.cost.max),
        fmt(r.mean_facilities),
        fmt(r.mean_large),
        fmt(r.large_serve_share),
        fmt(r.mean_p95_latency),
    ]
}

/// Compact fixed formatting for the committed CSV. The canonical platform
/// is the CI runner (linux); last-ulp libm differences on another OS can in
/// principle flip the 4th decimal, so regenerate the committed file there
/// (the CI examples job checks exactly this).
fn fmt(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_profile() -> CatalogProfile {
        CatalogProfile {
            points: 8,
            services: 8,
            requests: 20,
        }
    }

    #[test]
    fn sweep_covers_the_full_matrix_in_order() {
        let families = catalog::registry();
        let engines = [Engine::Pd, Engine::PerCommodity];
        let cells = sweep(&families, &tiny_profile(), &engines, 1, 2, 2).unwrap();
        assert_eq!(cells.len(), families.len() * engines.len() * 2);
        // Family-major, then engine, then trial.
        assert_eq!(cells[0].family, families[0].name);
        assert_eq!(cells[0].engine, "pd-omflp");
        assert_eq!(cells[1].engine, "pd-omflp");
        assert_eq!(cells[2].engine, "per-commodity");
        // Same trial index ⇒ same scenario seed for every engine.
        assert_eq!(cells[0].seed, cells[2].seed);
    }

    #[test]
    fn sweep_is_thread_count_independent() {
        let families = catalog::registry();
        let engines = Engine::all(9);
        let reference = sweep(&families, &tiny_profile(), &engines, 7, 2, 1).unwrap();
        for threads in [2, 5, 16] {
            let out = sweep(&families, &tiny_profile(), &engines, 7, 2, threads).unwrap();
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn aggregate_groups_and_averages() {
        let families: Vec<_> = catalog::registry().into_iter().take(2).collect();
        let engines = [Engine::Pd];
        let cells = sweep(&families, &tiny_profile(), &engines, 3, 3, 2).unwrap();
        let table = aggregate(&cells);
        assert_eq!(table.rows.len(), 2);
        for row in &table.rows {
            assert_eq!(row.cost.n, 3);
            assert!(row.cost.mean > 0.0);
            assert!(row.cost.min <= row.cost.mean && row.cost.mean <= row.cost.max);
            assert!(row.mean_facilities >= 1.0);
            assert!((0.0..=1.0).contains(&row.large_serve_share));
        }
    }

    #[test]
    fn renderings_are_stable_and_parse() {
        let table = sweep_catalog(&tiny_profile(), 5, 1, 2).unwrap();
        let csv = table.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + table.rows.len());
        let cols = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), cols, "ragged CSV row: {l}");
        }
        let text = table.render();
        assert!(text.contains("pd-omflp") && text.contains("all-large"));
    }
}
