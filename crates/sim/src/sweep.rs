//! Sharded (scenario-family × engine × seed) sweeps.
//!
//! [`sweep`] flattens the full matrix into independent cells, fans them
//! across worker threads with `omfl_par::parallel_map` (order-preserving,
//! chunk-static — results never depend on thread scheduling), and
//! [`aggregate`]s the cells into a per-(family, engine) comparison table.
//! Scenario seeds derive from `(base_seed, family, trial)` via
//! `omfl_par::seed_for`, so every engine sees the *same* instance in trial
//! `t` and the whole table is bit-identical across runs and thread counts.
//!
//! The table's text and CSV renderings are consumed by the `catalog-sweep`
//! experiment in `omfl-bench` and by `examples/scenario_sweep.rs` (which
//! commits the canonical CSV under `results/`).

use crate::{run_engine, Engine, SimReport};
use omfl_baselines::offline::ExactSolver;
use omfl_core::CoreError;
use omfl_par::{parallel_map, seed_for, summarize, Summary};
use omfl_workload::catalog;
use omfl_workload::catalog::{CatalogProfile, Family};

/// Size envelope for the per-scenario exact reference: instances inside it
/// get a branch-and-bound run (threads = 1, fixed node budget — fully
/// deterministic, so the canonical CSV stays regenerable); anything larger
/// reports `None` columns.
const SWEEP_EXACT_MAX_POINTS: usize = 32;
const SWEEP_EXACT_MAX_COMMODITIES: usize = 10;
const SWEEP_EXACT_MAX_REQUESTS: usize = 256;
const SWEEP_EXACT_NODE_BUDGET: u64 = 128;

/// The exact-OPT reference computed once per (family, trial) scenario and
/// shared by every engine's cell in that trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactRef {
    /// Certified optimum, when the branch-and-bound certified in budget.
    pub opt: Option<f64>,
    /// Certified relative gap `(upper − lower) / upper` when the exact
    /// solver ran (0 when certified); `None` when the instance was skipped.
    pub gap: Option<f64>,
}

impl ExactRef {
    /// The skipped reference (instance outside the envelope).
    pub fn skipped() -> Self {
        Self {
            opt: None,
            gap: None,
        }
    }
}

/// Runs the deterministic exact reference for one scenario.
fn exact_reference(scenario: &crate::Scenario) -> ExactRef {
    let inst = scenario.instance();
    if inst.num_points() > SWEEP_EXACT_MAX_POINTS
        || inst.num_commodities() > SWEEP_EXACT_MAX_COMMODITIES
        || scenario.requests.len() > SWEEP_EXACT_MAX_REQUESTS
    {
        return ExactRef::skipped();
    }
    match ExactSolver::new()
        .with_node_budget(SWEEP_EXACT_NODE_BUDGET)
        .solve_bounded(inst, &scenario.requests)
    {
        Ok(res) => {
            let rel = if res.upper_bound > 0.0 {
                res.gap / res.upper_bound
            } else {
                0.0
            };
            ExactRef {
                opt: res.certified().then_some(res.upper_bound),
                gap: Some(rel),
            }
        }
        Err(_) => ExactRef::skipped(),
    }
}

/// One completed cell of the sweep matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Family name (stable across parameterizations).
    pub family: &'static str,
    /// Engine name.
    pub engine: &'static str,
    /// The scenario seed this cell was built with.
    pub seed: u64,
    /// The full simulation report.
    pub report: SimReport,
    /// True competitive ratio `cost / certified OPT`, when the exact
    /// branch-and-bound certified this trial's scenario.
    pub ratio_exact: Option<f64>,
    /// Certified relative optimality gap of the exact reference (0 when
    /// certified), `None` when the scenario was outside its envelope.
    pub gap_certified: Option<f64>,
}

/// A (family, engine) row aggregated over its trials.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Family name.
    pub family: &'static str,
    /// Engine name.
    pub engine: &'static str,
    /// Total-cost statistics over the trials.
    pub cost: Summary,
    /// Mean number of facilities opened.
    pub mean_facilities: f64,
    /// Mean number of large facilities.
    pub mean_large: f64,
    /// Mean fraction of requests served by a large facility.
    pub large_serve_share: f64,
    /// Mean p95 connection latency.
    pub mean_p95_latency: f64,
    /// Mean true competitive ratio over the trials whose scenario the
    /// exact solver certified; `None` when it certified none of them.
    pub ratio_exact: Option<f64>,
    /// Mean certified relative gap over the trials where the exact solver
    /// ran; `None` when every trial was outside its envelope.
    pub gap_certified: Option<f64>,
}

/// The aggregated sweep: rows in (family, engine) first-seen order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTable {
    /// Aggregated rows.
    pub rows: Vec<SweepRow>,
}

/// The shared matrix plumbing behind [`sweep`] and [`timed_sweep`]: one
/// task per (family, trial) — the scenario is engine-independent, so each
/// worker builds it once and runs every engine through it — then
/// reassembly into deterministic matrix order (family-major, then engine,
/// then trial) regardless of thread count. The scenario seed for trial `t`
/// of family `i` is `seed_for(base_seed, i·2³² + t)`, independent of the
/// engine, so all engines compete on identical instances. Keeping this in
/// one place guarantees a timed run measures exactly the cells a regular
/// sweep produces.
#[allow(clippy::too_many_arguments)] // private plumbing: the six matrix knobs plus the two stage closures
fn run_matrix<C: Clone + Send, P: Send>(
    families: &[Family],
    profile: &CatalogProfile,
    engines: &[Engine],
    base_seed: u64,
    trials: usize,
    threads: usize,
    prep: impl Fn(&Family, &crate::Scenario) -> Result<P, CoreError> + Sync,
    cell: impl Fn(&Family, &crate::Scenario, &P, Engine, u64) -> Result<C, CoreError> + Sync,
) -> Result<Vec<C>, CoreError> {
    let mut tasks = Vec::with_capacity(families.len() * trials);
    for fi in 0..families.len() {
        for t in 0..trials as u64 {
            tasks.push((fi, t));
        }
    }
    let groups = parallel_map(&tasks, threads, |_, &(fi, t)| {
        let seed = seed_for(base_seed, ((fi as u64) << 32) | t);
        let scenario = families[fi].build(profile, seed)?;
        let prepared = prep(&families[fi], &scenario)?;
        engines
            .iter()
            .map(|&engine| cell(&families[fi], &scenario, &prepared, engine, seed))
            .collect::<Result<Vec<C>, CoreError>>()
    });
    let groups = groups.into_iter().collect::<Result<Vec<_>, _>>()?;
    let mut cells = Vec::with_capacity(families.len() * engines.len() * trials);
    for fi in 0..families.len() {
        for (ei, _) in engines.iter().enumerate() {
            for t in 0..trials {
                cells.push(groups[fi * trials + t][ei].clone());
            }
        }
    }
    Ok(cells)
}

/// Runs the full matrix: every family × every engine × `trials` seeds,
/// sharded over `threads` worker threads.
///
/// Cell order and seed derivation are documented on the shared matrix
/// runner; all engines in a trial see the identical instance.
pub fn sweep(
    families: &[Family],
    profile: &CatalogProfile,
    engines: &[Engine],
    base_seed: u64,
    trials: usize,
    threads: usize,
) -> Result<Vec<SweepCell>, CoreError> {
    run_matrix(
        families,
        profile,
        engines,
        base_seed,
        trials,
        threads,
        |_, scenario| Ok(exact_reference(scenario)),
        |fam, scenario, exact, engine, seed| {
            let report = run_engine(scenario, engine)?;
            let ratio_exact = exact
                .opt
                .filter(|&o| o > 0.0)
                .map(|o| report.total_cost / o);
            Ok(SweepCell {
                family: fam.name,
                engine: engine.name(),
                seed,
                report,
                ratio_exact,
                gap_certified: exact.gap,
            })
        },
    )
}

/// One timed cell of the sweep matrix: the wall-clock of a full
/// `run_engine` call on one (family, engine, seed) triple.
///
/// Timing is deliberately kept *out* of [`SweepCell`]: cells are compared
/// bit-identically by the determinism suite and aggregated into the
/// canonical CSV, and wall-clock is the one field that can never reproduce.
/// The bench runner's `--emit-json` path consumes these instead.
#[derive(Debug, Clone)]
pub struct TimedCell {
    /// Family name.
    pub family: &'static str,
    /// Engine name.
    pub engine: &'static str,
    /// Scenario seed.
    pub seed: u64,
    /// Wall-clock seconds of the full serve stream (excluding scenario
    /// construction, including final verification).
    pub secs: f64,
}

/// Runs the same matrix as [`sweep`] but records per-cell wall-clock
/// instead of reports. Built on the shared matrix runner, so cell order
/// and scenario seeds are identical to [`sweep`] by construction — a timed
/// run measures exactly the work a regular sweep would do.
pub fn timed_sweep(
    families: &[Family],
    profile: &CatalogProfile,
    engines: &[Engine],
    base_seed: u64,
    trials: usize,
    threads: usize,
) -> Result<Vec<TimedCell>, CoreError> {
    run_matrix(
        families,
        profile,
        engines,
        base_seed,
        trials,
        threads,
        // No exact reference in timed runs: timing must measure exactly the
        // engine work a regular sweep does, nothing else.
        |_, _| Ok(()),
        |fam, scenario, (), engine, seed| {
            let t0 = std::time::Instant::now();
            run_engine(scenario, engine)?;
            Ok(TimedCell {
                family: fam.name,
                engine: engine.name(),
                seed,
                secs: t0.elapsed().as_secs_f64(),
            })
        },
    )
}

/// Groups cells into per-(family, engine) rows, preserving first-seen order.
pub fn aggregate(cells: &[SweepCell]) -> SweepTable {
    let mut keys: Vec<(&'static str, &'static str)> = Vec::new();
    for c in cells {
        let k = (c.family, c.engine);
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    let rows = keys
        .into_iter()
        .map(|(family, engine)| {
            let group: Vec<&SweepCell> = cells
                .iter()
                .filter(|c| c.family == family && c.engine == engine)
                .collect();
            let costs: Vec<f64> = group.iter().map(|c| c.report.total_cost).collect();
            let n = group.len() as f64;
            let mean = |f: &dyn Fn(&SimReport) -> f64| -> f64 {
                group.iter().map(|c| f(&c.report)).sum::<f64>() / n
            };
            let mean_opt = |f: &dyn Fn(&SweepCell) -> Option<f64>| -> Option<f64> {
                let vals: Vec<f64> = group.iter().filter_map(|c| f(c)).collect();
                if vals.is_empty() {
                    None
                } else {
                    Some(vals.iter().sum::<f64>() / vals.len() as f64)
                }
            };
            SweepRow {
                family,
                engine,
                cost: summarize(&costs),
                mean_facilities: mean(&|r| r.facilities as f64),
                mean_large: mean(&|r| r.large_facilities as f64),
                large_serve_share: mean(&|r| r.large_serves as f64 / (r.requests.max(1)) as f64),
                mean_p95_latency: mean(&|r| r.latency.p95),
                ratio_exact: mean_opt(&|c| c.ratio_exact),
                gap_certified: mean_opt(&|c| c.gap_certified),
            }
        })
        .collect();
    SweepTable { rows }
}

/// Convenience: the whole catalog against all four engines, aggregated.
pub fn sweep_catalog(
    profile: &CatalogProfile,
    base_seed: u64,
    trials: usize,
    threads: usize,
) -> Result<SweepTable, CoreError> {
    let families = catalog::registry();
    let engines = Engine::all(seed_for(base_seed, u64::MAX));
    let cells = sweep(&families, profile, &engines, base_seed, trials, threads)?;
    Ok(aggregate(&cells))
}

impl SweepTable {
    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let headers = [
            "family",
            "engine",
            "trials",
            "mean cost",
            "ci95",
            "min",
            "max",
            "facs",
            "large",
            "lg-serve",
            "p95 lat",
            "ratio-x",
            "cert-gap",
        ];
        let cells: Vec<Vec<String>> = self.rows.iter().map(row_cells).collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| {
                    if i == 0 {
                        format!("{:<width$}", c, width = widths[i])
                    } else {
                        format!("{:>width$}", c, width = widths[i])
                    }
                })
                .collect::<Vec<_>>()
                .join("  ")
                + "\n"
        };
        let mut out = line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &cells {
            out.push_str(&line(row));
        }
        out
    }

    /// CSV form with a stable schema (the committed canonical results file
    /// under `results/` uses exactly this).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "family,engine,trials,mean_cost,ci95,min_cost,max_cost,\
             mean_facilities,mean_large,large_serve_share,mean_p95_latency,\
             ratio_exact,gap_certified\n",
        );
        for row in self.rows.iter().map(row_cells) {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

fn row_cells(r: &SweepRow) -> Vec<String> {
    vec![
        r.family.to_string(),
        r.engine.to_string(),
        r.cost.n.to_string(),
        fmt(r.cost.mean),
        fmt(r.cost.ci95),
        fmt(r.cost.min),
        fmt(r.cost.max),
        fmt(r.mean_facilities),
        fmt(r.mean_large),
        fmt(r.large_serve_share),
        fmt(r.mean_p95_latency),
        fmt(r.ratio_exact.unwrap_or(f64::NAN)),
        fmt(r.gap_certified.unwrap_or(f64::NAN)),
    ]
}

/// Compact fixed formatting for the committed CSV. The canonical platform
/// is the CI runner (linux); last-ulp libm differences on another OS can in
/// principle flip the 4th decimal, so regenerate the committed file there
/// (the CI examples job checks exactly this).
fn fmt(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_profile() -> CatalogProfile {
        CatalogProfile {
            points: 8,
            services: 8,
            requests: 20,
        }
    }

    #[test]
    fn sweep_covers_the_full_matrix_in_order() {
        let families = catalog::registry();
        let engines = [Engine::Pd, Engine::PerCommodity];
        let cells = sweep(&families, &tiny_profile(), &engines, 1, 2, 2).unwrap();
        assert_eq!(cells.len(), families.len() * engines.len() * 2);
        // Family-major, then engine, then trial.
        assert_eq!(cells[0].family, families[0].name);
        assert_eq!(cells[0].engine, "pd-omflp");
        assert_eq!(cells[1].engine, "pd-omflp");
        assert_eq!(cells[2].engine, "per-commodity");
        // Same trial index ⇒ same scenario seed for every engine.
        assert_eq!(cells[0].seed, cells[2].seed);
    }

    #[test]
    fn sweep_is_thread_count_independent() {
        let families = catalog::registry();
        let engines = Engine::all(9);
        let reference = sweep(&families, &tiny_profile(), &engines, 7, 2, 1).unwrap();
        for threads in [2, 5, 16] {
            let out = sweep(&families, &tiny_profile(), &engines, 7, 2, threads).unwrap();
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn aggregate_groups_and_averages() {
        let families: Vec<_> = catalog::registry().into_iter().take(2).collect();
        let engines = [Engine::Pd];
        let cells = sweep(&families, &tiny_profile(), &engines, 3, 3, 2).unwrap();
        let table = aggregate(&cells);
        assert_eq!(table.rows.len(), 2);
        for row in &table.rows {
            assert_eq!(row.cost.n, 3);
            assert!(row.cost.mean > 0.0);
            assert!(row.cost.min <= row.cost.mean && row.cost.mean <= row.cost.max);
            assert!(row.mean_facilities >= 1.0);
            assert!((0.0..=1.0).contains(&row.large_serve_share));
        }
    }

    #[test]
    fn exact_columns_certify_small_families_and_bound_ratios() {
        let families = catalog::registry();
        let engines = [Engine::Pd];
        let cells = sweep(&families, &tiny_profile(), &engines, 11, 2, 2).unwrap();
        let mut certified = 0;
        for c in &cells {
            if c.family.ends_with("-large") {
                // ×32/×64 families sit outside the exact envelope.
                assert_eq!(c.ratio_exact, None, "{}", c.family);
                assert_eq!(c.gap_certified, None, "{}", c.family);
                continue;
            }
            if let Some(ratio) = c.ratio_exact {
                certified += 1;
                // Online cost can never beat the certified optimum.
                assert!(ratio >= 1.0 - 1e-6, "{}: ratio_exact {ratio} < 1", c.family);
                assert_eq!(c.gap_certified, Some(0.0), "{}", c.family);
            }
        }
        assert!(
            certified >= 8,
            "expected most tiny scenarios to certify, got {certified}"
        );
        let table = aggregate(&cells);
        for row in table.rows.iter().filter(|r| !r.family.ends_with("-large")) {
            if let Some(ratio) = row.ratio_exact {
                assert!(ratio >= 1.0 - 1e-6);
            }
        }
    }

    #[test]
    fn renderings_are_stable_and_parse() {
        let table = sweep_catalog(&tiny_profile(), 5, 1, 2).unwrap();
        let csv = table.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + table.rows.len());
        let cols = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), cols, "ragged CSV row: {l}");
        }
        let text = table.render();
        assert!(text.contains("pd-omflp") && text.contains("all-large"));
    }
}
