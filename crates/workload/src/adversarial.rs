//! The paper's lower-bound constructions as runnable workloads.

use crate::scenario::Scenario;
use omfl_commodity::cost::CostModel;
use omfl_commodity::{CommodityId, CommoditySet, Universe};
use omfl_core::request::Request;
use omfl_core::CoreError;
use omfl_metric::line::LineMetric;
use omfl_metric::{Metric, PointId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// Which phase(s) of the Theorem 2 adversary to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Theorem2Phase {
    /// Only the `√|S|` random commodities of `S'` (the proof's sequence):
    /// OPT = 1, every online algorithm pays `Ω(√|S|)`.
    SPrimeOnly,
    /// `S'` first, then every remaining commodity once: now OPT = `√|S|`
    /// and prediction pays off — predicting algorithms reach `O(1)·√|S|`
    /// total while never-predict pays `|S|`.
    SPrimeThenAll,
}

/// The Theorem 2 gadget: a single point, cost `g(σ) = ⌈|σ|/√|S|⌉`, and
/// singleton requests for a uniformly random `S' ⊂ S` with `|S'| = √|S|`.
///
/// `s` should be a perfect square (the paper assumes `√|S| ∈ ℕ`); other
/// values work but blur the constants.
pub fn theorem2_gadget(s: u16, phase: Theorem2Phase, seed: u64) -> Result<Scenario, CoreError> {
    let universe = Universe::new(s).map_err(CoreError::Commodity)?;
    let sqrt_s = (s as f64).sqrt().round() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<u16> = (0..s).collect();
    ids.shuffle(&mut rng);
    let s_prime: Vec<u16> = ids[..sqrt_s.min(s as usize)].to_vec();

    let mut order: Vec<u16> = s_prime.clone();
    if phase == Theorem2Phase::SPrimeThenAll {
        order.extend(ids[sqrt_s.min(s as usize)..].iter().copied());
    }
    let requests = order
        .into_iter()
        .map(|e| {
            Ok(Request::new(
                PointId(0),
                CommoditySet::singleton(universe, CommodityId(e)).map_err(CoreError::Commodity)?,
            ))
        })
        .collect::<Result<Vec<_>, CoreError>>()?;

    let metric: Arc<dyn Metric> = Arc::new(LineMetric::single_point());
    Scenario::new(
        format!("thm2-gadget(s={s},{phase:?})"),
        metric,
        CostModel::ceil_sqrt(s),
        requests,
    )
}

/// Closed-form OPT of the Theorem 2 gadget (one facility holding every
/// requested commodity): `⌈#distinct/√|S|⌉`.
pub fn theorem2_opt(s: u16, phase: Theorem2Phase) -> f64 {
    let sqrt_s = (s as f64).sqrt();
    match phase {
        Theorem2Phase::SPrimeOnly => 1.0,
        Theorem2Phase::SPrimeThenAll => (s as f64 / sqrt_s).ceil(),
    }
}

/// A Theorem-2-style gadget with a class-C cost `g_x(σ) = |σ|^{x/2}`
/// (for the Theorem 18 sweep). Requests the whole of a random `S'` of the
/// given size, one commodity at a time.
pub fn class_c_gadget(
    s: u16,
    x: f64,
    s_prime_len: usize,
    seed: u64,
) -> Result<Scenario, CoreError> {
    let universe = Universe::new(s).map_err(CoreError::Commodity)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<u16> = (0..s).collect();
    ids.shuffle(&mut rng);
    let requests = ids[..s_prime_len.min(s as usize)]
        .iter()
        .map(|&e| {
            Ok(Request::new(
                PointId(0),
                CommoditySet::singleton(universe, CommodityId(e)).map_err(CoreError::Commodity)?,
            ))
        })
        .collect::<Result<Vec<_>, CoreError>>()?;
    let metric: Arc<dyn Metric> = Arc::new(LineMetric::single_point());
    Scenario::new(
        format!("classC-gadget(s={s},x={x})"),
        metric,
        CostModel::power(s, x, 1.0),
        requests,
    )
}

/// A hierarchical dyadic line workload in the spirit of Fotakis'
/// `Ω(log n / log log n)` lower bound: `levels` rounds of requests at
/// dyadic positions of `[0, span]`, finer each round, each demanding a
/// random bundle of `bundle` commodities.
///
/// This is the *shape* of the adversary (nested scales forcing repeated
/// facility decisions), not the adaptive adversary itself — measured ratios
/// grow with `levels` but need not match the exact constant.
pub fn dyadic_line(
    levels: u32,
    span: f64,
    s: u16,
    bundle: usize,
    seed: u64,
) -> Result<Scenario, CoreError> {
    let universe = Universe::new(s).map_err(CoreError::Commodity)?;
    let mut rng = StdRng::seed_from_u64(seed);
    // Points: all dyadic positions at the finest level.
    let n_pts = (1usize << levels) + 1;
    let positions: Vec<f64> = (0..n_pts)
        .map(|i| span * i as f64 / (n_pts - 1) as f64)
        .collect();
    let metric: Arc<dyn Metric> = Arc::new(LineMetric::new(positions).map_err(CoreError::Metric)?);

    let mut requests = Vec::new();
    for level in 0..=levels {
        let step = 1usize << (levels - level);
        let mut idx = 0usize;
        while idx < n_pts {
            let mut ids: Vec<u16> = (0..s).collect();
            let (chosen, _) = ids.partial_shuffle(&mut rng, bundle.clamp(1, s as usize));
            let demand = CommoditySet::from_ids(universe, chosen).map_err(CoreError::Commodity)?;
            requests.push(Request::new(PointId(idx as u32), demand));
            idx += step;
        }
    }
    Scenario::new(
        format!("dyadic-line(levels={levels},s={s})"),
        metric,
        CostModel::power(s, 1.0, span / 4.0),
        requests,
    )
}

/// Repeats each commodity of the gadget `reps` times (with replacement,
/// shuffled) — used by the arrival-order ablation where a single pass hides
/// the effect of randomization.
pub fn theorem2_gadget_repeated(s: u16, reps: usize, seed: u64) -> Result<Scenario, CoreError> {
    let base = theorem2_gadget(s, Theorem2Phase::SPrimeOnly, seed)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let mut requests = Vec::with_capacity(base.requests.len() * reps);
    for _ in 0..reps {
        requests.extend(base.requests.iter().cloned());
    }
    requests.shuffle(&mut rng);
    base.with_requests(requests)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gadget_shape() {
        let sc = theorem2_gadget(64, Theorem2Phase::SPrimeOnly, 1).unwrap();
        assert_eq!(sc.len(), 8, "|S'| = sqrt(64)");
        assert_eq!(sc.instance().num_points(), 1);
        // All demands are distinct singletons.
        let mut seen = std::collections::HashSet::new();
        for r in &sc.requests {
            assert_eq!(r.demand().len(), 1);
            assert!(seen.insert(r.demand().first().unwrap().0));
        }
    }

    #[test]
    fn gadget_full_phase_covers_all_commodities() {
        let sc = theorem2_gadget(16, Theorem2Phase::SPrimeThenAll, 2).unwrap();
        assert_eq!(sc.len(), 16);
        let mut seen = std::collections::HashSet::new();
        for r in &sc.requests {
            seen.insert(r.demand().first().unwrap().0);
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn gadget_opt_values() {
        assert_eq!(theorem2_opt(64, Theorem2Phase::SPrimeOnly), 1.0);
        assert_eq!(theorem2_opt(64, Theorem2Phase::SPrimeThenAll), 8.0);
    }

    #[test]
    fn gadget_is_seed_deterministic_and_seed_sensitive() {
        let a = theorem2_gadget(64, Theorem2Phase::SPrimeOnly, 3).unwrap();
        let b = theorem2_gadget(64, Theorem2Phase::SPrimeOnly, 3).unwrap();
        assert_eq!(
            a.requests
                .iter()
                .map(|r| r.demand().first().unwrap().0)
                .collect::<Vec<_>>(),
            b.requests
                .iter()
                .map(|r| r.demand().first().unwrap().0)
                .collect::<Vec<_>>()
        );
        let c = theorem2_gadget(64, Theorem2Phase::SPrimeOnly, 4).unwrap();
        assert_ne!(
            a.requests
                .iter()
                .map(|r| r.demand().first().unwrap().0)
                .collect::<Vec<_>>(),
            c.requests
                .iter()
                .map(|r| r.demand().first().unwrap().0)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn class_c_gadget_uses_power_cost() {
        let sc = class_c_gadget(16, 2.0, 4, 1).unwrap();
        assert_eq!(sc.len(), 4);
        // Linear cost (x = 2): f({e}) = 1, f(S) = 16.
        assert_eq!(sc.instance().large_cost(PointId(0)), 16.0);
    }

    #[test]
    fn dyadic_line_counts() {
        let sc = dyadic_line(3, 8.0, 4, 2, 1).unwrap();
        // Levels 0..=3 visit 2^l + 1 dyadic points: 2 + 3 + 5 + 9 = 19.
        assert_eq!(sc.len(), 19);
        assert_eq!(sc.instance().num_points(), 9);
    }

    #[test]
    fn repeated_gadget_multiplies_length() {
        let sc = theorem2_gadget_repeated(16, 3, 5).unwrap();
        assert_eq!(sc.len(), 12, "sqrt(16) = 4 requests × 3 reps");
    }
}
