//! Arrival-order controls for the §1.2 weak-adversary ablation.
//!
//! The paper notes (citing Lang's t-bounded adversary result) that
//! Meyerson-style algorithms perform better when the adversary cannot fully
//! control arrival order. These transforms reorder a fixed request multiset.

use omfl_core::request::Request;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How a generated request sequence is ordered before being served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// As generated (the adversarial order for adversarial generators).
    Adversarial,
    /// Uniformly random permutation (the random-order model).
    RandomOrder {
        /// Shuffle seed.
        seed: u64,
    },
    /// Sorted by location id — a "sweeping" order that is easy for online
    /// algorithms on line metrics.
    ByLocation,
}

impl Arrival {
    /// Applies the ordering to a request sequence.
    pub fn apply(self, requests: &[Request]) -> Vec<Request> {
        let mut v: Vec<Request> = requests.to_vec();
        match self {
            Arrival::Adversarial => {}
            Arrival::RandomOrder { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                v.shuffle(&mut rng);
            }
            Arrival::ByLocation => {
                v.sort_by_key(|r| r.location());
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omfl_commodity::{CommoditySet, Universe};
    use omfl_metric::PointId;

    fn reqs() -> Vec<Request> {
        let u = Universe::new(4).unwrap();
        (0..8u32)
            .map(|i| {
                Request::new(
                    PointId(7 - i % 8),
                    CommoditySet::from_ids(u, &[(i % 4) as u16]).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn adversarial_is_identity() {
        let r = reqs();
        let out = Arrival::Adversarial.apply(&r);
        assert_eq!(out.len(), r.len());
        assert!(out.iter().zip(&r).all(|(a, b)| a == b));
    }

    #[test]
    fn random_order_is_permutation_and_deterministic() {
        let r = reqs();
        let a = Arrival::RandomOrder { seed: 1 }.apply(&r);
        let b = Arrival::RandomOrder { seed: 1 }.apply(&r);
        assert_eq!(a, b);
        assert_ne!(a, r, "seed 1 should actually shuffle 8 items");
        let mut sa: Vec<u32> = a.iter().map(|x| x.location().0).collect();
        let mut sr: Vec<u32> = r.iter().map(|x| x.location().0).collect();
        sa.sort();
        sr.sort();
        assert_eq!(sa, sr);
    }

    #[test]
    fn by_location_sorts() {
        let out = Arrival::ByLocation.apply(&reqs());
        assert!(out.windows(2).all(|w| w[0].location() <= w[1].location()));
    }
}
