//! The scenario catalog: named, parameterized, seedable workload families.
//!
//! Each [`Family`] probes a regime where the paper's `O(√|S|·log n)` bound
//! (Theorem 4) or its baselines behave differently — heavy-tailed demand,
//! drifting and bursty arrivals, regular vs clustered vs hierarchical
//! topologies, and adversarial gadgets diluted with stochastic noise. The
//! [`registry`] is the corpus behind the engine-conformance suite, the
//! sharded sweep harness (`omfl_sim::sweep`), and the `catalog-sweep`
//! experiment.
//!
//! Every family is deterministic given `(profile, seed)`, so sweeps
//! reproduce bit-for-bit across runs and thread counts.

use crate::adversarial;
use crate::composite;
use crate::demand::{default_bundles, DemandModel};
use crate::scenario::Scenario;
use crate::spatial;
use omfl_commodity::cost::{CostModel, FacilityCostFn};
use omfl_commodity::{CommodityId, CommoditySet};
use omfl_core::request::Request;
use omfl_core::CoreError;
use omfl_metric::tree::TreeMetric;
use omfl_metric::{Metric, PointId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Size knobs shared by every family. Families interpret them approximately
/// (a dyadic line rounds `points` to `2^levels + 1`; bundle families clamp
/// `services` up to the 8 the default bundle catalogue needs).
#[derive(Debug, Clone)]
pub struct CatalogProfile {
    /// Approximate metric size `|M|`.
    pub points: usize,
    /// Number of commodities `|S|`.
    pub services: u16,
    /// Approximate request-stream length `n`.
    pub requests: usize,
}

impl Default for CatalogProfile {
    fn default() -> Self {
        Self {
            points: 24,
            services: 9,
            requests: 120,
        }
    }
}

impl CatalogProfile {
    /// A profile small enough for per-arrival invariant checks and CI.
    pub fn small() -> Self {
        Self {
            points: 12,
            services: 8,
            requests: 48,
        }
    }
}

/// A named scenario family: a seedable builder plus the regime it probes.
#[derive(Debug, Clone, Copy)]
pub struct Family {
    /// Stable family name (sweep tables group by it).
    pub name: &'static str,
    /// The paper / related-work regime this family exercises.
    pub regime: &'static str,
    builder: fn(&CatalogProfile, u64) -> Result<Scenario, CoreError>,
}

impl Family {
    /// Defines a family outside the built-in registry — downstream corpora
    /// and tests (e.g. the scheduler-skew determinism suite) extend sweeps
    /// with custom families this way.
    pub fn new(
        name: &'static str,
        regime: &'static str,
        builder: fn(&CatalogProfile, u64) -> Result<Scenario, CoreError>,
    ) -> Self {
        Self {
            name,
            regime,
            builder,
        }
    }

    /// Builds one concrete scenario of this family.
    pub fn build(&self, profile: &CatalogProfile, seed: u64) -> Result<Scenario, CoreError> {
        (self.builder)(profile, seed)
    }
}

/// All catalog families, in fixed order (sweep tables and the canonical CSV
/// rely on this order being stable).
pub fn registry() -> Vec<Family> {
    vec![
        Family {
            name: "zipf-services",
            regime: "heavy-tailed service popularity on a network (§1 motivating \
                     scenario; few hot services dominate, as in web workloads)",
            builder: zipf_services,
        },
        Family {
            name: "hotspot-drift",
            regime: "non-stationary demand whose mode migrates across the metric \
                     (the regime where irrevocable early openings go stale, cf. \
                     online facility location with deletions)",
            builder: hotspot_drift,
        },
        Family {
            name: "burst-arrivals",
            regime: "correlated bursts: one location repeats a bundle many times \
                     in a row (t-bounded/weak-adversary arrival orders, §1.2)",
            builder: burst_arrivals,
        },
        Family {
            name: "euclid-grid",
            regime: "regular Euclidean grid with uniform demand — the isotropic \
                     baseline where log n, not √|S|, drives the ratio",
            builder: euclid_grid,
        },
        Family {
            name: "euclid-clusters",
            regime: "clustered plane with bundle demand (Figure 3 serve-mode \
                     workload: joint facilities pay off inside clusters)",
            builder: euclid_clusters,
        },
        Family {
            name: "tree-hierarchy",
            regime: "complete-binary-tree metric with bundle demand \
                     (hierarchical topologies / HST embeddings of related work)",
            builder: tree_hierarchy,
        },
        Family {
            name: "thm2-mix",
            regime: "Theorem 2 single-point Ω(√|S|) adversary diluted with \
                     uniform stochastic requests — how fast the lower-bound \
                     pressure washes out",
            builder: thm2_mix,
        },
        Family {
            name: "dyadic-mix",
            regime: "Fotakis-style dyadic line (Corollary 3's log n/log log n \
                     term) layered with Zipf stochastic noise",
            builder: dyadic_mix,
        },
        Family {
            name: "zipf-services-large",
            regime: "zipf-services at a large-metric scale (|M| = 32·points, \
                     4096 at points=128): the regime where per-arrival t3/t4 \
                     opening-target scans dominate PD serve and incremental \
                     argmin maintenance pays",
            builder: zipf_services_large,
        },
        Family {
            name: "euclid-grid-large",
            regime: "hotspot-skewed Euclidean grid at |M| = 64·points (16384 \
                     at points=256) — beyond any dense distance matrix, the \
                     blocked row-cache regime",
            builder: euclid_grid_large,
        },
        Family {
            name: "cold-scatter-large",
            regime: "id-scattered Euclidean clusters (|M| = 32·points) with \
                     region-hopping cold queries: point ids are random with \
                     respect to space, so id-order block bounds see every \
                     block straddle every cluster and prune nothing — only \
                     distance-aware (relabeled) pruning gets traction",
            builder: cold_scatter_large,
        },
    ]
}

/// Metric-size multiplier of `zipf-services-large` over the profile's
/// `points` (so small CI profiles stay tractable while bench profiles reach
/// |M| ≥ 4096).
pub const ZIPF_LARGE_POINTS_SCALE: usize = 32;

/// Metric-size multiplier of `euclid-grid-large` over the profile's
/// `points`.
pub const EUCLID_LARGE_POINTS_SCALE: usize = 64;

/// Metric-size multiplier of `cold-scatter-large` over the profile's
/// `points`.
pub const COLD_LARGE_POINTS_SCALE: usize = 32;

/// Looks a family up by its stable name.
pub fn by_name(name: &str) -> Option<Family> {
    registry().into_iter().find(|f| f.name == name)
}

// --- builders -------------------------------------------------------------

fn zipf_services(p: &CatalogProfile, seed: u64) -> Result<Scenario, CoreError> {
    let s = p.services.max(2);
    composite::service_network(
        p.points.max(2),
        p.points / 2,
        p.requests,
        DemandModel::Zipf {
            alpha: 1.1,
            k_max: 3,
        },
        CostModel::power(s, 1.0, 3.0),
        seed,
    )
}

fn hotspot_drift(p: &CatalogProfile, seed: u64) -> Result<Scenario, CoreError> {
    let s = p.services.max(2);
    let n_pts = p.points.max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let metric = spatial::random_line(n_pts, n_pts as f64, &mut rng).map_err(CoreError::Metric)?;
    let cost = CostModel::power(s, 1.0, 2.0);
    let universe = cost.universe();
    let locs = spatial::sample_locations_drift(n_pts, p.requests, 0.1, &mut rng);
    let requests = locs
        .into_iter()
        .map(|loc| {
            Request::new(
                PointId(loc),
                DemandModel::UniformK { k: 2 }.sample(universe, &mut rng),
            )
        })
        .collect();
    Scenario::new(
        format!("hotspot-drift(|M|={n_pts},n={})", p.requests),
        metric,
        cost,
        requests,
    )
}

fn burst_arrivals(p: &CatalogProfile, seed: u64) -> Result<Scenario, CoreError> {
    let s = p.services.max(8);
    let n_pts = p.points.max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let metric =
        spatial::random_network(n_pts, n_pts / 2, 1.0, &mut rng).map_err(CoreError::Metric)?;
    let cost = CostModel::affine(s, 5.0, 0.6);
    let universe = cost.universe();
    let demand = DemandModel::Bundles {
        bundles: default_bundles(s),
        noise: 0.1,
    };
    // Bursts: one location and one bundle, repeated burst-length times. The
    // adversarially easy part is within-burst repetition; across bursts the
    // stream is stochastic.
    let burst_len = 6;
    let mut requests = Vec::with_capacity(p.requests);
    while requests.len() < p.requests {
        let loc = PointId(rng.gen_range(0..n_pts as u32));
        let d = demand.sample(universe, &mut rng);
        for _ in 0..burst_len.min(p.requests - requests.len()) {
            requests.push(Request::new(loc, d.clone()));
        }
    }
    Scenario::new(
        format!("burst-arrivals(|M|={n_pts},n={})", p.requests),
        metric,
        cost,
        requests,
    )
}

fn euclid_grid(p: &CatalogProfile, seed: u64) -> Result<Scenario, CoreError> {
    let s = p.services.max(2);
    // Squarest grid with ~`points` cells.
    let w = (p.points.max(4) as f64).sqrt().round() as usize;
    let h = p.points.max(4).div_ceil(w);
    let mut rng = StdRng::seed_from_u64(seed);
    let metric = spatial::grid_plane(w, h, 1.0).map_err(CoreError::Metric)?;
    let n_pts = metric.len();
    let cost = CostModel::power(s, 1.0, 2.5);
    let universe = cost.universe();
    let locs = spatial::sample_locations(n_pts, p.requests, 0.0, &mut rng);
    let requests = locs
        .into_iter()
        .map(|loc| {
            Request::new(
                PointId(loc),
                DemandModel::UniformK { k: 2 }.sample(universe, &mut rng),
            )
        })
        .collect();
    Scenario::new(
        format!("euclid-grid({w}x{h},n={})", p.requests),
        metric,
        cost,
        requests,
    )
}

fn euclid_clusters(p: &CatalogProfile, seed: u64) -> Result<Scenario, CoreError> {
    let s = p.services.max(8);
    let clusters = 3;
    let per_cluster = p.points.max(clusters).div_ceil(clusters);
    composite::clustered_bundles(
        clusters,
        per_cluster,
        40.0,
        2.0,
        p.requests,
        DemandModel::Bundles {
            bundles: default_bundles(s),
            noise: 0.15,
        },
        CostModel::affine(s, 6.0, 0.75),
        seed,
    )
}

fn tree_hierarchy(p: &CatalogProfile, seed: u64) -> Result<Scenario, CoreError> {
    let s = p.services.max(8);
    let n_pts = p.points.max(3);
    let mut rng = StdRng::seed_from_u64(seed);
    let metric: Arc<dyn Metric> =
        Arc::new(TreeMetric::complete_binary(n_pts).map_err(CoreError::Metric)?);
    let cost = CostModel::affine(s, 4.0, 0.5);
    let universe = cost.universe();
    let demand = DemandModel::Bundles {
        bundles: default_bundles(s),
        noise: 0.1,
    };
    // Hotspot-biased locations: deep leaves are hot, so requests cluster in
    // subtrees and joint facilities at internal nodes pay off.
    let locs = spatial::sample_locations(n_pts, p.requests, 1.0, &mut rng);
    let requests = locs
        .into_iter()
        .map(|loc| Request::new(PointId(loc), demand.sample(universe, &mut rng)))
        .collect();
    Scenario::new(
        format!("tree-hierarchy(|M|={n_pts},n={})", p.requests),
        metric,
        cost,
        requests,
    )
}

fn thm2_mix(p: &CatalogProfile, seed: u64) -> Result<Scenario, CoreError> {
    let s = p.services.max(4);
    let n_pts = p.points.max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let metric = spatial::random_line(n_pts, 4.0, &mut rng).map_err(CoreError::Metric)?;
    let cost = CostModel::ceil_sqrt(s);
    let universe = cost.universe();

    // Adversarial stream: the Theorem 2 sequence (a random S' of size √|S|,
    // one singleton at a time) pinned to a random attack point.
    let attack = PointId(rng.gen_range(0..n_pts as u32));
    let sqrt_s = ((s as f64).sqrt().round() as usize).max(1);
    let mut ids: Vec<u16> = (0..s).collect();
    ids.shuffle(&mut rng);
    let adversarial: Vec<Request> = ids[..sqrt_s.min(s as usize)]
        .iter()
        .map(|&e| {
            Ok(Request::new(
                attack,
                CommoditySet::singleton(universe, CommodityId(e)).map_err(CoreError::Commodity)?,
            ))
        })
        .collect::<Result<Vec<_>, CoreError>>()?;

    // Stochastic stream: uniform locations, pairs of commodities.
    let stochastic: Vec<Request> = spatial::sample_locations(
        n_pts,
        p.requests.saturating_sub(adversarial.len()),
        0.0,
        &mut rng,
    )
    .into_iter()
    .map(|loc| {
        Request::new(
            PointId(loc),
            DemandModel::UniformK { k: 2 }.sample(universe, &mut rng),
        )
    })
    .collect();

    let requests = riffle(adversarial, stochastic, &mut rng);
    Scenario::new(
        format!("thm2-mix(|S|={s},n={})", requests.len()),
        metric,
        cost,
        requests,
    )
}

fn dyadic_mix(p: &CatalogProfile, seed: u64) -> Result<Scenario, CoreError> {
    let s = p.services.max(4);
    // 2^levels + 1 points ≈ profile.points.
    let levels = (usize::BITS - 1 - p.points.max(5).leading_zeros()).clamp(2, 6);
    let base = adversarial::dyadic_line(levels, 8.0, s, 2, seed)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD7AD);
    let universe = base.cost.universe();
    let n_pts = base.metric.len();
    let stochastic: Vec<Request> = spatial::sample_locations(n_pts, p.requests / 2, 1.0, &mut rng)
        .into_iter()
        .map(|loc| {
            Request::new(
                PointId(loc),
                DemandModel::Zipf {
                    alpha: 1.0,
                    k_max: 2,
                }
                .sample(universe, &mut rng),
            )
        })
        .collect();
    let merged = riffle(base.requests.clone(), stochastic, &mut rng);
    base.with_requests(merged)
}

fn zipf_services_large(p: &CatalogProfile, seed: u64) -> Result<Scenario, CoreError> {
    let s = p.services.max(2);
    let nodes = (p.points * ZIPF_LARGE_POINTS_SCALE).max(64);
    composite::service_network(
        nodes,
        nodes / 2,
        p.requests,
        DemandModel::Zipf {
            alpha: 1.1,
            k_max: 3,
        },
        CostModel::power(s, 1.0, 3.0),
        seed,
    )
}

fn euclid_grid_large(p: &CatalogProfile, seed: u64) -> Result<Scenario, CoreError> {
    let s = p.services.max(2);
    let target = (p.points * EUCLID_LARGE_POINTS_SCALE).max(256);
    let w = (target as f64).sqrt().round() as usize;
    let h = target.div_ceil(w);
    let mut rng = StdRng::seed_from_u64(seed);
    let metric = spatial::grid_plane(w, h, 1.0).map_err(CoreError::Metric)?;
    let n_pts = metric.len();
    let cost = CostModel::power(s, 1.0, 2.5);
    let universe = cost.universe();
    // Hotspot-skewed locations (Zipf over a shuffled identity): big metric,
    // localized demand — the working set the blocked row cache holds.
    let locs = spatial::sample_locations(n_pts, p.requests, 1.0, &mut rng);
    let requests = locs
        .into_iter()
        .map(|loc| {
            Request::new(
                PointId(loc),
                DemandModel::UniformK { k: 2 }.sample(universe, &mut rng),
            )
        })
        .collect();
    Scenario::new(
        format!("euclid-grid-large({w}x{h},n={})", p.requests),
        metric,
        cost,
        requests,
    )
}

fn cold_scatter_large(p: &CatalogProfile, seed: u64) -> Result<Scenario, CoreError> {
    let s = p.services.max(2);
    let target = (p.points * COLD_LARGE_POINTS_SCALE).max(256);
    let clusters = (target / 8).clamp(2, 64);
    let per_cluster = target.div_ceil(clusters);
    let mut rng = StdRng::seed_from_u64(seed);
    // Tight clusters on a wide span, ids scattered across clusters: the
    // substrate where id-order block bounds are provably useless.
    let (metric, membership) =
        spatial::scattered_clustered_plane(clusters, per_cluster, 1024.0, 6.0, &mut rng)
            .map_err(CoreError::Metric)?;
    let cost = CostModel::power(s, 1.0, 2.5);
    let universe = cost.universe();
    // Cold queries: every arrival hops to a uniformly random cluster, so
    // consecutive requests land in unrelated regions and the budget mass
    // near one query says nothing about the next.
    let requests = (0..p.requests)
        .map(|_| {
            let c = rng.gen_range(0..clusters);
            let member = membership[c][rng.gen_range(0..membership[c].len())];
            Request::new(
                PointId(member),
                DemandModel::UniformK { k: 2 }.sample(universe, &mut rng),
            )
        })
        .collect();
    Scenario::new(
        format!(
            "cold-scatter-large({clusters}x{per_cluster},n={})",
            p.requests
        ),
        metric,
        cost,
        requests,
    )
}

/// Merges two streams into one, preserving each stream's internal order
/// (the adversarial nesting survives; the noise is interleaved at random
/// positions proportional to the remaining lengths).
fn riffle<R: Rng>(a: Vec<Request>, b: Vec<Request>, rng: &mut R) -> Vec<Request> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut rem_a, mut rem_b) = (a.len(), b.len());
    let (mut ia, mut ib) = (a.into_iter(), b.into_iter());
    while rem_a > 0 || rem_b > 0 {
        // Remaining counts drive the coin so the merge is unbiased.
        let take_a = rem_b == 0 || (rem_a > 0 && rng.gen_range(0..rem_a + rem_b) < rem_a);
        if take_a {
            out.push(ia.next().expect("rem_a > 0"));
            rem_a -= 1;
        } else {
            out.push(ib.next().expect("rem_b > 0"));
            rem_b -= 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_at_least_six_distinct_families() {
        let reg = registry();
        assert!(reg.len() >= 6, "catalog must expose ≥ 6 families");
        let mut names: Vec<&str> = reg.iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len(), "family names must be unique");
    }

    #[test]
    fn every_family_builds_and_is_non_empty() {
        let profile = CatalogProfile::small();
        for fam in registry() {
            let sc = fam.build(&profile, 7).unwrap_or_else(|e| {
                panic!("family {} failed to build: {e}", fam.name);
            });
            assert!(!sc.is_empty(), "{} produced no requests", fam.name);
            assert!(sc.instance().num_points() >= 1, "{}", fam.name);
            assert!(!fam.regime.is_empty());
        }
    }

    #[test]
    fn families_are_seed_deterministic_and_seed_sensitive() {
        let profile = CatalogProfile::small();
        for fam in registry() {
            let a = fam.build(&profile, 3).unwrap();
            let b = fam.build(&profile, 3).unwrap();
            assert_eq!(a.requests, b.requests, "{} not deterministic", fam.name);
            let c = fam.build(&profile, 4).unwrap();
            assert!(
                a.requests != c.requests || a.len() != c.len(),
                "{} ignores its seed",
                fam.name
            );
        }
    }

    #[test]
    fn by_name_finds_every_family() {
        for fam in registry() {
            assert!(by_name(fam.name).is_some(), "{} not found", fam.name);
        }
        assert!(by_name("no-such-family").is_none());
    }

    #[test]
    fn riffle_preserves_subsequence_order() {
        let cost = CostModel::power(4, 1.0, 1.0);
        let u = cost.universe();
        let mk =
            |loc: u32, e: u16| Request::new(PointId(loc), CommoditySet::from_ids(u, &[e]).unwrap());
        let a: Vec<Request> = (0..5).map(|i| mk(i, 0)).collect();
        let b: Vec<Request> = (0..5).map(|i| mk(i, 1)).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let merged = riffle(a.clone(), b.clone(), &mut rng);
        assert_eq!(merged.len(), 10);
        let sub = |e: u16| -> Vec<u32> {
            merged
                .iter()
                .filter(|r| r.demand().first().unwrap().0 == e)
                .map(|r| r.location().0)
                .collect()
        };
        assert_eq!(sub(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(sub(1), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn profile_scales_request_counts() {
        let small = CatalogProfile::small();
        let big = CatalogProfile {
            requests: 200,
            ..CatalogProfile::default()
        };
        let f = by_name("zipf-services").unwrap();
        assert!(f.build(&small, 1).unwrap().len() < f.build(&big, 1).unwrap().len());
    }
}
