//! Composed, named scenarios: spatial generator × demand model × cost model.

use crate::demand::DemandModel;
use crate::scenario::Scenario;
use crate::spatial;
use omfl_commodity::cost::{CostModel, FacilityCostFn};
use omfl_core::request::Request;
use omfl_core::CoreError;
use omfl_metric::PointId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Uniform requests on a random line — the bread-and-butter workload of the
/// Theorem 4 / Theorem 19 ratio sweeps.
pub fn uniform_line(
    n_points: usize,
    span: f64,
    n_requests: usize,
    demand: DemandModel,
    cost: CostModel,
    seed: u64,
) -> Result<Scenario, CoreError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let metric = spatial::random_line(n_points, span, &mut rng).map_err(CoreError::Metric)?;
    let universe = cost.universe();
    let locs = spatial::sample_locations(n_points, n_requests, 0.0, &mut rng);
    let requests = locs
        .into_iter()
        .map(|p| Request::new(PointId(p), demand.sample(universe, &mut rng)))
        .collect();
    Scenario::new(
        format!("uniform-line(n={n_requests},|M|={n_points})"),
        metric,
        cost,
        requests,
    )
}

/// Clustered plane with bundle demands — the Figure 3 serve-mode workload.
#[allow(clippy::too_many_arguments)]
pub fn clustered_bundles(
    clusters: usize,
    per_cluster: usize,
    span: f64,
    spread: f64,
    n_requests: usize,
    demand: DemandModel,
    cost: CostModel,
    seed: u64,
) -> Result<Scenario, CoreError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let metric = spatial::clustered_plane(clusters, per_cluster, span, spread, &mut rng)
        .map_err(CoreError::Metric)?;
    let n_points = metric.len();
    let universe = cost.universe();
    let locs = spatial::sample_locations(n_points, n_requests, 0.8, &mut rng);
    let requests = locs
        .into_iter()
        .map(|p| Request::new(PointId(p), demand.sample(universe, &mut rng)))
        .collect();
    Scenario::new(
        format!("clustered-bundles(k={clusters},n={n_requests})"),
        metric,
        cost,
        requests,
    )
}

/// The paper's motivating scenario: a service network with hotspot clients
/// requesting service bundles.
pub fn service_network(
    nodes: usize,
    extra_edges: usize,
    n_requests: usize,
    demand: DemandModel,
    cost: CostModel,
    seed: u64,
) -> Result<Scenario, CoreError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let metric =
        spatial::random_network(nodes, extra_edges, 1.0, &mut rng).map_err(CoreError::Metric)?;
    let universe = cost.universe();
    let locs = spatial::sample_locations(nodes, n_requests, 1.0, &mut rng);
    let requests = locs
        .into_iter()
        .map(|p| Request::new(PointId(p), demand.sample(universe, &mut rng)))
        .collect();
    Scenario::new(
        format!("service-network(nodes={nodes},n={n_requests})"),
        metric,
        cost,
        requests,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::default_bundles;

    #[test]
    fn uniform_line_scenario_builds() {
        let sc = uniform_line(
            16,
            20.0,
            40,
            DemandModel::UniformK { k: 2 },
            CostModel::power(8, 1.0, 2.0),
            1,
        )
        .unwrap();
        assert_eq!(sc.len(), 40);
        assert_eq!(sc.instance().num_points(), 16);
        assert_eq!(sc.instance().num_commodities(), 8);
    }

    #[test]
    fn clustered_bundles_scenario_builds() {
        let sc = clustered_bundles(
            3,
            5,
            50.0,
            2.0,
            30,
            DemandModel::Bundles {
                bundles: default_bundles(8),
                noise: 0.1,
            },
            CostModel::affine(8, 4.0, 0.5),
            2,
        )
        .unwrap();
        assert_eq!(sc.len(), 30);
        assert_eq!(sc.instance().num_points(), 15);
    }

    #[test]
    fn service_network_scenario_builds() {
        let sc = service_network(
            20,
            10,
            25,
            DemandModel::Zipf {
                alpha: 1.0,
                k_max: 3,
            },
            CostModel::power(8, 1.0, 3.0),
            3,
        )
        .unwrap();
        assert_eq!(sc.len(), 25);
        assert_eq!(sc.instance().num_points(), 20);
    }

    #[test]
    fn scenarios_are_reproducible() {
        let build = || {
            uniform_line(
                8,
                10.0,
                20,
                DemandModel::UniformK { k: 2 },
                CostModel::power(4, 1.0, 1.0),
                7,
            )
            .unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(a.requests, b.requests);
    }
}
