//! Demand-set samplers: which commodities a request asks for.

use omfl_commodity::{CommodityId, CommoditySet, Universe};
use rand::seq::SliceRandom;
use rand::Rng;

/// How request demands are drawn.
#[derive(Debug, Clone)]
pub enum DemandModel {
    /// Exactly `k` distinct commodities, uniformly at random.
    UniformK {
        /// Demand size (clamped to `|S|`).
        k: usize,
    },
    /// Commodity popularity follows a Zipf law with exponent `alpha`; the
    /// demand size is `1 + Binomial(k_max − 1, 0.5)`-ish (drawn uniformly in
    /// `1..=k_max`). Models "a few services are hot" workloads.
    Zipf {
        /// Zipf exponent (0 = uniform, 1 ≈ classic web popularity).
        alpha: f64,
        /// Maximum demand size.
        k_max: usize,
    },
    /// Demands are drawn from fixed bundles (service suites); with
    /// probability `noise` one extra uniform commodity joins. Models app
    /// stacks that are requested together — the regime where OMFLP's joint
    /// facilities pay off.
    Bundles {
        /// The bundles (each non-empty, ids in range).
        bundles: Vec<Vec<u16>>,
        /// Probability of one extra random commodity.
        noise: f64,
    },
}

impl DemandModel {
    /// Draws one demand set (never empty).
    pub fn sample<R: Rng>(&self, universe: Universe, rng: &mut R) -> CommoditySet {
        match self {
            DemandModel::UniformK { k } => {
                let k = (*k).clamp(1, universe.len());
                let mut ids: Vec<u16> = (0..universe.size()).collect();
                let (chosen, _) = ids.partial_shuffle(rng, k);
                CommoditySet::from_ids(universe, chosen).expect("ids in range")
            }
            DemandModel::Zipf { alpha, k_max } => {
                let k = rng.gen_range(1..=(*k_max).clamp(1, universe.len()));
                let mut set = CommoditySet::empty(universe);
                let mut guard = 0;
                while set.len() < k && guard < 64 * k {
                    let e = zipf_draw(universe.len(), *alpha, rng);
                    set.insert(CommodityId(e as u16)).expect("in range");
                    guard += 1;
                }
                if set.is_empty() {
                    set.insert(CommodityId(0)).expect("universe non-empty");
                }
                set
            }
            DemandModel::Bundles { bundles, noise } => {
                assert!(!bundles.is_empty(), "bundle list must be non-empty");
                let b = bundles.choose(rng).expect("non-empty");
                let mut set = CommoditySet::from_ids(universe, b).expect("bundle ids in range");
                if rng.gen::<f64>() < *noise {
                    let e = rng.gen_range(0..universe.size());
                    set.insert(CommodityId(e)).expect("in range");
                }
                set
            }
        }
    }
}

/// Draws an index in `0..n` with probability ∝ `1/(i+1)^alpha`.
fn zipf_draw<R: Rng>(n: usize, alpha: f64, rng: &mut R) -> usize {
    // Inverse-CDF over the normalized weights; n is small (≤ thousands), so
    // a linear scan is fine and avoids a lookup-table cache.
    let z: f64 = (1..=n).map(|i| (i as f64).powf(-alpha)).sum();
    let mut u = rng.gen::<f64>() * z;
    for i in 0..n {
        u -= ((i + 1) as f64).powf(-alpha);
        if u <= 0.0 {
            return i;
        }
    }
    n - 1
}

/// Standard bundle catalogue for the service-network scenario: a web stack,
/// a data stack, a media stack and a monitoring pair, over `s ≥ 8`
/// commodities.
pub fn default_bundles(s: u16) -> Vec<Vec<u16>> {
    assert!(s >= 8, "default bundles need |S| >= 8");
    vec![
        vec![0, 1, 2],       // web: LB + app + cache
        vec![1, 3, 4],       // data: app + db + queue
        vec![5, 6],          // media: transcode + store
        vec![2, 7],          // monitoring: cache + metrics
        vec![0, 1, 2, 3, 4], // full web+data suite
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn u(n: u16) -> Universe {
        Universe::new(n).unwrap()
    }

    #[test]
    fn uniform_k_draws_exact_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DemandModel::UniformK { k: 3 };
        for _ in 0..50 {
            let s = m.sample(u(10), &mut rng);
            assert_eq!(s.len(), 3);
        }
    }

    #[test]
    fn uniform_k_clamps_to_universe() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = DemandModel::UniformK { k: 99 };
        let s = m.sample(u(4), &mut rng);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn zipf_prefers_low_ids() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = DemandModel::Zipf {
            alpha: 1.2,
            k_max: 1,
        };
        let mut low = 0;
        let trials = 400;
        for _ in 0..trials {
            let s = m.sample(u(16), &mut rng);
            assert_eq!(s.len(), 1);
            if s.first().unwrap().0 < 4 {
                low += 1;
            }
        }
        assert!(
            low > trials / 2,
            "zipf(1.2) should put >50% of mass on the first quarter, got {low}/{trials}"
        );
    }

    #[test]
    fn bundles_are_respected() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = DemandModel::Bundles {
            bundles: vec![vec![1, 2]],
            noise: 0.0,
        };
        for _ in 0..10 {
            let s = m.sample(u(8), &mut rng);
            assert_eq!(s.len(), 2);
            assert!(s.contains(CommodityId(1)) && s.contains(CommodityId(2)));
        }
    }

    #[test]
    fn bundle_noise_adds_commodities_sometimes() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = DemandModel::Bundles {
            bundles: vec![vec![0]],
            noise: 1.0,
        };
        let mut grew = 0;
        for _ in 0..50 {
            if m.sample(u(8), &mut rng).len() > 1 {
                grew += 1;
            }
        }
        // With noise = 1.0, the extra draw only fails to grow the set when
        // it hits commodity 0 itself (1/8 chance).
        assert!(
            grew > 30,
            "noise=1 should usually add a commodity, got {grew}/50"
        );
    }

    #[test]
    fn default_bundles_in_range() {
        for b in default_bundles(8) {
            assert!(!b.is_empty());
            assert!(b.iter().all(|&e| e < 8));
        }
    }

    #[test]
    fn samples_are_never_empty() {
        let mut rng = StdRng::seed_from_u64(6);
        for m in [
            DemandModel::UniformK { k: 1 },
            DemandModel::Zipf {
                alpha: 2.0,
                k_max: 3,
            },
            DemandModel::Bundles {
                bundles: vec![vec![0], vec![1, 2]],
                noise: 0.5,
            },
        ] {
            for _ in 0..20 {
                assert!(!m.sample(u(4), &mut rng).is_empty());
            }
        }
    }
}
