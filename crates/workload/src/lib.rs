//! Workload and instance generators for OMFLP experiments.
//!
//! Every generator is deterministic given its seed, so experiments reproduce
//! bit-for-bit. The two adversarial constructions mirror the paper's lower
//! bounds:
//!
//! * [`adversarial::theorem2_gadget`] — the Theorem 2 single-point adversary
//!   (`g(σ) = ⌈|σ|/√|S|⌉`, a uniformly random `S' ⊂ S` of size `√|S|`
//!   requested one commodity at a time);
//! * [`adversarial::dyadic_line`] — a hierarchical line workload in the
//!   spirit of Fotakis' `Ω(log n / log log n)` construction (Corollary 3's
//!   second term).
//!
//! The remaining generators model the paper's motivating scenario (§1):
//! clients appearing in a network and requesting service bundles.
//!
//! [`catalog`] assembles both kinds into a registry of named, seedable
//! scenario *families* — the corpus driven by the conformance test suite and
//! the sharded sweep harness in `omfl_sim`.

pub mod adversarial;
pub mod arrival;
pub mod catalog;
pub mod composite;
pub mod demand;
pub mod scenario;
pub mod spatial;

pub use catalog::{CatalogProfile, Family};
pub use scenario::Scenario;
