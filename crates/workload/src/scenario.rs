//! A scenario bundles everything an experiment needs: the shared metric,
//! the cost model, the instance, and the request sequence.

use omfl_commodity::cost::CostModel;
use omfl_core::heavy::SharedMetric;
use omfl_core::instance::Instance;
use omfl_core::request::Request;
use omfl_core::CoreError;
use omfl_metric::Metric;
use std::sync::Arc;

/// A ready-to-run experiment input.
pub struct Scenario {
    /// Human-readable scenario name (appears in experiment tables).
    pub name: String,
    /// The metric, shared so baselines can build their projections.
    pub metric: Arc<dyn Metric>,
    /// The cost model (cloneable; baselines take copies).
    pub cost: CostModel,
    /// The online request sequence.
    pub requests: Vec<Request>,
    instance: Instance,
}

impl Scenario {
    /// Assembles a scenario, building the instance from the shared parts.
    pub fn new(
        name: impl Into<String>,
        metric: Arc<dyn Metric>,
        cost: CostModel,
        requests: Vec<Request>,
    ) -> Result<Self, CoreError> {
        let instance = Instance::with_cost_fn(
            Box::new(SharedMetric(Arc::clone(&metric))),
            Box::new(cost.clone()),
        )?;
        for r in &requests {
            r.validate(&instance)?;
        }
        Ok(Self {
            name: name.into(),
            metric,
            cost,
            requests,
            instance,
        })
    }

    /// The assembled instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` when the request sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// A copy of this scenario with the requests reordered.
    pub fn with_requests(&self, requests: Vec<Request>) -> Result<Self, CoreError> {
        Self::new(
            self.name.clone(),
            Arc::clone(&self.metric),
            self.cost.clone(),
            requests,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omfl_commodity::CommoditySet;
    use omfl_metric::line::LineMetric;
    use omfl_metric::PointId;

    #[test]
    fn scenario_assembles_and_validates() {
        let metric: Arc<dyn Metric> = Arc::new(LineMetric::new(vec![0.0, 1.0]).unwrap());
        let cost = CostModel::power(3, 1.0, 1.0);
        let u = cost_universe(&cost);
        let reqs = vec![Request::new(
            PointId(1),
            CommoditySet::from_ids(u, &[0, 2]).unwrap(),
        )];
        let s = Scenario::new("test", metric, cost, reqs).unwrap();
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.instance().num_points(), 2);
    }

    #[test]
    fn invalid_request_rejected() {
        let metric: Arc<dyn Metric> = Arc::new(LineMetric::single_point());
        let cost = CostModel::power(2, 1.0, 1.0);
        let u = cost_universe(&cost);
        let reqs = vec![Request::new(
            PointId(5),
            CommoditySet::from_ids(u, &[0]).unwrap(),
        )];
        assert!(Scenario::new("bad", metric, cost, reqs).is_err());
    }

    fn cost_universe(cost: &CostModel) -> omfl_commodity::Universe {
        use omfl_commodity::cost::FacilityCostFn;
        cost.universe()
    }
}
