//! A scenario bundles everything an experiment needs: the shared metric,
//! the cost model, the instance, and the request sequence.

use omfl_commodity::cost::CostModel;
use omfl_core::heavy::SharedMetric;
use omfl_core::instance::Instance;
use omfl_core::request::Request;
use omfl_core::CoreError;
use omfl_metric::Metric;
use std::sync::Arc;

/// A ready-to-run experiment input.
pub struct Scenario {
    /// Human-readable scenario name (appears in experiment tables).
    pub name: String,
    /// The metric, shared so baselines can build their projections.
    pub metric: Arc<dyn Metric>,
    /// The cost model (cloneable; baselines take copies).
    pub cost: CostModel,
    /// The online request sequence.
    pub requests: Vec<Request>,
    /// Shared so request-sequence variants ([`Scenario::with_requests`])
    /// reuse the assembled instance instead of rebuilding it.
    instance: Arc<Instance>,
}

impl Scenario {
    /// Assembles a scenario, building the instance from the shared parts.
    pub fn new(
        name: impl Into<String>,
        metric: Arc<dyn Metric>,
        cost: CostModel,
        requests: Vec<Request>,
    ) -> Result<Self, CoreError> {
        let instance = Instance::with_cost_fn(
            Box::new(SharedMetric(Arc::clone(&metric))),
            Box::new(cost.clone()),
        )?;
        for r in &requests {
            r.validate(&instance)?;
        }
        Ok(Self {
            name: name.into(),
            metric,
            cost,
            requests,
            instance: Arc::new(instance),
        })
    }

    /// The assembled instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` when the request sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// A copy of this scenario with the requests reordered (or repeated).
    ///
    /// The requests must be valid against this scenario's instance —
    /// typically a reordering or repetition of the already-validated
    /// sequence — so the shared instance is reused and no per-request
    /// revalidation happens (debug builds still validate). Arrival-order
    /// ablations call this in a hot loop; every engine additionally
    /// validates each request as it is served, so a foreign, malformed
    /// request still surfaces as a serve-time error.
    pub fn with_requests(&self, requests: Vec<Request>) -> Result<Self, CoreError> {
        #[cfg(debug_assertions)]
        for r in &requests {
            r.validate(&self.instance)?;
        }
        Ok(Self {
            name: self.name.clone(),
            metric: Arc::clone(&self.metric),
            cost: self.cost.clone(),
            requests,
            instance: Arc::clone(&self.instance),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omfl_commodity::CommoditySet;
    use omfl_metric::line::LineMetric;
    use omfl_metric::PointId;

    #[test]
    fn scenario_assembles_and_validates() {
        let metric: Arc<dyn Metric> = Arc::new(LineMetric::new(vec![0.0, 1.0]).unwrap());
        let cost = CostModel::power(3, 1.0, 1.0);
        let u = cost_universe(&cost);
        let reqs = vec![Request::new(
            PointId(1),
            CommoditySet::from_ids(u, &[0, 2]).unwrap(),
        )];
        let s = Scenario::new("test", metric, cost, reqs).unwrap();
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.instance().num_points(), 2);
    }

    #[test]
    fn invalid_request_rejected() {
        let metric: Arc<dyn Metric> = Arc::new(LineMetric::single_point());
        let cost = CostModel::power(2, 1.0, 1.0);
        let u = cost_universe(&cost);
        let reqs = vec![Request::new(
            PointId(5),
            CommoditySet::from_ids(u, &[0]).unwrap(),
        )];
        assert!(Scenario::new("bad", metric, cost, reqs).is_err());
    }

    fn cost_universe(cost: &CostModel) -> omfl_commodity::Universe {
        use omfl_commodity::cost::FacilityCostFn;
        cost.universe()
    }

    #[test]
    fn with_requests_shares_the_instance() {
        let metric: Arc<dyn Metric> = Arc::new(LineMetric::new(vec![0.0, 1.0, 2.0]).unwrap());
        let cost = CostModel::power(3, 1.0, 1.0);
        let u = cost_universe(&cost);
        let reqs: Vec<Request> = (0..3u32)
            .map(|i| {
                Request::new(
                    PointId(i),
                    CommoditySet::from_ids(u, &[(i % 3) as u16]).unwrap(),
                )
            })
            .collect();
        let s = Scenario::new("share", metric, cost, reqs).unwrap();
        let mut reordered = s.requests.clone();
        reordered.reverse();
        let s2 = s.with_requests(reordered).unwrap();
        assert_eq!(s2.len(), 3);
        assert!(
            std::ptr::eq(s.instance(), s2.instance()),
            "reordering must not rebuild the instance"
        );
    }
}
