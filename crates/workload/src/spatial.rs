//! Spatial generators: where points live and where requests appear.

use omfl_metric::euclidean::EuclideanMetric;
use omfl_metric::graph::{Graph, GraphMetric};
use omfl_metric::line::LineMetric;
use omfl_metric::{Metric, MetricError};
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::Arc;

/// `n` points uniform on `[0, span]` (sorted, so point ids are spatial).
pub fn random_line<R: Rng>(
    n: usize,
    span: f64,
    rng: &mut R,
) -> Result<Arc<dyn Metric>, MetricError> {
    let mut xs: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * span).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Ok(Arc::new(LineMetric::new(xs)?))
}

/// `clusters` Gaussian-ish clusters of `per_cluster` points each in the
/// unit square scaled by `span`; cluster centres uniform, offsets
/// triangular-distributed with width `spread`.
pub fn clustered_plane<R: Rng>(
    clusters: usize,
    per_cluster: usize,
    span: f64,
    spread: f64,
    rng: &mut R,
) -> Result<Arc<dyn Metric>, MetricError> {
    let mut pts = Vec::with_capacity(clusters * per_cluster);
    for _ in 0..clusters {
        let cx = rng.gen::<f64>() * span;
        let cy = rng.gen::<f64>() * span;
        for _ in 0..per_cluster {
            // Triangular offset: sum of two uniforms, centered.
            let dx = (rng.gen::<f64>() + rng.gen::<f64>() - 1.0) * spread;
            let dy = (rng.gen::<f64>() + rng.gen::<f64>() - 1.0) * spread;
            pts.push((cx + dx, cy + dy));
        }
    }
    Ok(Arc::new(EuclideanMetric::plane(&pts)?))
}

/// A `w × h` Euclidean grid with the given spacing — the regular data-center
/// / city-block topology (point id = row-major cell index).
pub fn grid_plane(w: usize, h: usize, spacing: f64) -> Result<Arc<dyn Metric>, MetricError> {
    let mut pts = Vec::with_capacity(w * h);
    for r in 0..h {
        for c in 0..w {
            pts.push((c as f64 * spacing, r as f64 * spacing));
        }
    }
    Ok(Arc::new(EuclideanMetric::plane(&pts)?))
}

/// A connected random network: a uniform spanning chain (shuffled order)
/// plus `extra_edges` random chords; edge weights uniform in
/// `[0.5, 1.5) · base_weight`. This is the "network infrastructure" of the
/// paper's motivating scenario.
pub fn random_network<R: Rng>(
    nodes: usize,
    extra_edges: usize,
    base_weight: f64,
    rng: &mut R,
) -> Result<Arc<dyn Metric>, MetricError> {
    if nodes == 0 {
        return Err(MetricError::Empty);
    }
    let mut order: Vec<u32> = (0..nodes as u32).collect();
    // Fisher–Yates with the caller's RNG for reproducibility.
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut edges: Vec<(u32, u32, f64)> = Vec::with_capacity(nodes - 1 + extra_edges);
    for w in order.windows(2) {
        edges.push((w[0], w[1], (0.5 + rng.gen::<f64>()) * base_weight));
    }
    let mut added = 0;
    let mut guard = 0;
    while added < extra_edges && guard < extra_edges * 20 + 16 {
        guard += 1;
        let a = rng.gen_range(0..nodes as u32);
        let b = rng.gen_range(0..nodes as u32);
        if a != b {
            edges.push((a, b, (0.5 + rng.gen::<f64>()) * base_weight));
            added += 1;
        }
    }
    let g = Graph::from_edges(nodes, &edges)?;
    Ok(Arc::new(GraphMetric::new(&g)?))
}

/// Like [`clustered_plane`], but point ids are **scattered**: the generated
/// points are shuffled before the metric is built, so consecutive ids land
/// in unrelated clusters. Returns the metric plus the cluster membership
/// (`clusters[c]` lists the shuffled ids of cluster `c`, in generation
/// order) so request streams can still target clusters.
///
/// This is the adversarial substrate for id-order spatial indexes: any
/// structure that buckets by raw point id sees every bucket straddle every
/// cluster, so only genuinely distance-aware bucketing (relabeling) gets
/// traction.
#[allow(clippy::type_complexity)]
pub fn scattered_clustered_plane<R: Rng>(
    clusters: usize,
    per_cluster: usize,
    span: f64,
    spread: f64,
    rng: &mut R,
) -> Result<(Arc<dyn Metric>, Vec<Vec<u32>>), MetricError> {
    let n = clusters * per_cluster;
    let mut pts = Vec::with_capacity(n);
    for _ in 0..clusters {
        let cx = rng.gen::<f64>() * span;
        let cy = rng.gen::<f64>() * span;
        for _ in 0..per_cluster {
            let dx = (rng.gen::<f64>() + rng.gen::<f64>() - 1.0) * spread;
            let dy = (rng.gen::<f64>() + rng.gen::<f64>() - 1.0) * spread;
            pts.push((cx + dx, cy + dy));
        }
    }
    // Shuffle generation order → point id.
    let mut id_of: Vec<u32> = (0..n as u32).collect();
    id_of.shuffle(rng);
    let mut shuffled = vec![(0.0, 0.0); n];
    let mut membership = vec![Vec::with_capacity(per_cluster); clusters];
    for (gen_idx, &(x, y)) in pts.iter().enumerate() {
        let id = id_of[gen_idx];
        shuffled[id as usize] = (x, y);
        membership[gen_idx / per_cluster].push(id);
    }
    Ok((Arc::new(EuclideanMetric::plane(&shuffled)?), membership))
}

/// Samples request locations: `n` point ids, either uniform over the space
/// or biased toward `hotspots` (Zipf over a random permutation of points).
pub fn sample_locations<R: Rng>(
    num_points: usize,
    n: usize,
    hotspot_alpha: f64,
    rng: &mut R,
) -> Vec<u32> {
    if hotspot_alpha <= 0.0 {
        return (0..n)
            .map(|_| rng.gen_range(0..num_points as u32))
            .collect();
    }
    // Zipf over a shuffled identity so hotspots are arbitrary points.
    let mut perm: Vec<u32> = (0..num_points as u32).collect();
    for i in (1..perm.len()).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let z: f64 = (1..=num_points)
        .map(|i| (i as f64).powf(-hotspot_alpha))
        .sum();
    (0..n)
        .map(|_| {
            let mut u = rng.gen::<f64>() * z;
            for (i, &p) in perm.iter().enumerate() {
                u -= ((i + 1) as f64).powf(-hotspot_alpha);
                if u <= 0.0 {
                    return p;
                }
            }
            perm[num_points - 1]
        })
        .collect()
}

/// Locations for a *drifting* hotspot: request `i` is drawn near an anchor
/// that moves linearly across the point-id range over the sequence, with a
/// triangular spread of relative width `width` (fraction of the id range).
///
/// On metrics whose point ids are spatially ordered (sorted lines, grids,
/// dyadic lines) this models a demand distribution whose mode migrates —
/// the non-stationary regime where early facility commitments go stale.
pub fn sample_locations_drift<R: Rng>(
    num_points: usize,
    n: usize,
    width: f64,
    rng: &mut R,
) -> Vec<u32> {
    let top = (num_points - 1) as f64;
    (0..n)
        .map(|i| {
            let anchor = if n <= 1 {
                0.0
            } else {
                top * i as f64 / (n - 1) as f64
            };
            // Triangular offset: sum of two uniforms, centered.
            let off = (rng.gen::<f64>() + rng.gen::<f64>() - 1.0) * width * num_points as f64;
            (anchor + off).round().clamp(0.0, top) as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use omfl_metric::validate::check_axioms_sampled;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_line_is_sorted_and_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = random_line(50, 100.0, &mut rng).unwrap();
        assert_eq!(m.len(), 50);
        check_axioms_sampled(m.as_ref(), 2_000, 9).unwrap();
    }

    #[test]
    fn clustered_plane_has_expected_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = clustered_plane(4, 10, 100.0, 2.0, &mut rng).unwrap();
        assert_eq!(m.len(), 40);
        check_axioms_sampled(m.as_ref(), 2_000, 9).unwrap();
    }

    #[test]
    fn random_network_is_connected_metric() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = random_network(30, 20, 1.0, &mut rng).unwrap();
        assert_eq!(m.len(), 30);
        check_axioms_sampled(m.as_ref(), 2_000, 9).unwrap();
    }

    #[test]
    fn random_network_single_node() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = random_network(1, 0, 1.0, &mut rng).unwrap();
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn locations_in_range_and_hotspots_bias() {
        let mut rng = StdRng::seed_from_u64(5);
        let uniform = sample_locations(100, 500, 0.0, &mut rng);
        assert!(uniform.iter().all(|&p| p < 100));
        let hot = sample_locations(100, 500, 1.5, &mut rng);
        assert!(hot.iter().all(|&p| p < 100));
        // Hotspot sampling concentrates: the most common point should
        // appear much more often than 1% of the time.
        let mut counts = [0u32; 100];
        for &p in &hot {
            counts[p as usize] += 1;
        }
        let max = counts.iter().max().copied().unwrap();
        assert!(
            max >= 25,
            "hotspot concentration too weak: max count {max}/500"
        );
    }

    #[test]
    fn grid_plane_is_a_valid_metric() {
        let m = grid_plane(4, 3, 2.0).unwrap();
        assert_eq!(m.len(), 12);
        // Row-major ids: neighbours in a row are `spacing` apart.
        use omfl_metric::PointId;
        assert!((m.distance(PointId(0), PointId(1)) - 2.0).abs() < 1e-12);
        assert!((m.distance(PointId(0), PointId(4)) - 2.0).abs() < 1e-12);
        check_axioms_sampled(m.as_ref(), 1_000, 9).unwrap();
    }

    #[test]
    fn drift_locations_migrate_across_the_range() {
        let mut rng = StdRng::seed_from_u64(6);
        let locs = sample_locations_drift(100, 400, 0.05, &mut rng);
        assert!(locs.iter().all(|&p| p < 100));
        // The first quarter of the stream should live near the low ids and
        // the last quarter near the high ids.
        let head: f64 = locs[..100].iter().map(|&p| p as f64).sum::<f64>() / 100.0;
        let tail: f64 = locs[300..].iter().map(|&p| p as f64).sum::<f64>() / 100.0;
        assert!(
            head < 35.0 && tail > 65.0,
            "drift not visible: head mean {head}, tail mean {tail}"
        );
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = {
            let mut rng = StdRng::seed_from_u64(7);
            sample_locations(50, 100, 1.0, &mut rng)
        };
        let b = {
            let mut rng = StdRng::seed_from_u64(7);
            sample_locations(50, 100, 1.0, &mut rng)
        };
        assert_eq!(a, b);
    }
}
