//! Reproduces the Theorem 2 lower-bound phenomenon interactively: on the
//! single-point gadget, every online algorithm pays Ω(√|S|)·OPT, and once
//! the adversary is forced to reveal all of S, only the predicting
//! algorithms (PD/RAND) recover.
//!
//! ```sh
//! cargo run --release --example adversarial_lowerbound
//! ```

use omfl::baselines::per_commodity::{PerCommodity, PerCommodityParts};
use omfl::core::algorithm::{run_online, OnlineAlgorithm};
use omfl::prelude::*;
use omfl::workload::adversarial::{theorem2_gadget, theorem2_opt, Theorem2Phase};

fn main() {
    println!("Theorem 2 gadget: one point, cost g(σ) = ⌈|σ|/√S⌉, random S' of size √S\n");
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12}",
        "|S|", "phase", "pd/OPT", "rand/OPT", "per-com/OPT"
    );
    for s in [16u16, 64, 256, 1024] {
        for phase in [Theorem2Phase::SPrimeOnly, Theorem2Phase::SPrimeThenAll] {
            let sc = theorem2_gadget(s, phase, 1).expect("gadget");
            let opt = theorem2_opt(s, phase);
            let inst = sc.instance();

            let mut pd = PdOmflp::new(inst);
            let pd_cost = run_online(&mut pd, &sc.requests).expect("pd");
            pd.solution().verify(inst).expect("feasible");

            let mut rand = RandOmflp::new(inst, 3);
            let rand_cost = run_online(&mut rand, &sc.requests).expect("rand");

            let parts =
                PerCommodityParts::build(std::sync::Arc::clone(&sc.metric), sc.cost.clone())
                    .expect("parts");
            let mut dec = PerCommodity::new_pd(&parts);
            let dec_cost = run_online(&mut dec, &sc.requests).expect("decomp");

            println!(
                "{:>6} {:>8} {:>12.2} {:>12.2} {:>12.2}",
                s,
                match phase {
                    Theorem2Phase::SPrimeOnly => "S'",
                    Theorem2Phase::SPrimeThenAll => "S'+S",
                },
                pd_cost / opt,
                rand_cost / opt,
                dec_cost / opt,
            );
        }
    }
    println!("\nReading: in phase S' everyone pays Θ(√S)·OPT — that is the lower bound binding.");
    println!(
        "In phase S'+S, PD/RAND converge to O(1)·OPT (they predicted), per-commodity stays at √S."
    );
}
