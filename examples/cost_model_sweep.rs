//! Sweeps the class-C cost exponent x ∈ [0, 2] (Theorem 18 / Figure 2) and
//! prints the theoretical curves next to measured PD ratios on the adaptive
//! gadget.
//!
//! ```sh
//! cargo run --release --example cost_model_sweep
//! ```

use omfl::core::algorithm::{run_online, OnlineAlgorithm};
use omfl::core::bounds::{class_c_lower, class_c_upper};
use omfl::prelude::*;
use omfl::workload::adversarial::class_c_gadget;

fn main() {
    let s: u16 = 1024;
    let sqrt_s = (s as f64).sqrt() as usize;
    println!("class-C costs g_x(σ) = |σ|^(x/2), |S| = {s}, gadget |S'| = {sqrt_s}\n");
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>14}",
        "x", "upper curve", "lower curve", "pd/OPT", "facilities s/l"
    );
    for i in 0..=8 {
        let x = 0.25 * i as f64;
        let sc = class_c_gadget(s, x, sqrt_s, 11).expect("gadget");
        let inst = sc.instance();
        let opt = (sqrt_s as f64).powf(x / 2.0); // one facility holding S'
        let mut pd = PdOmflp::new(inst);
        let cost = run_online(&mut pd, &sc.requests).expect("pd");
        pd.solution().verify(inst).expect("feasible");
        println!(
            "{:>5.2} {:>12.2} {:>12.2} {:>12.2} {:>10}/{}",
            x,
            class_c_upper(s as usize, x),
            class_c_lower(s as usize, x),
            cost / opt,
            pd.solution().num_small_facilities(),
            pd.solution().num_large_facilities(),
        );
    }
    println!("\nReading: measured PD tracks the lower curve min(√S^((2-x)/2), √S^(x/2))");
    println!("— constant at x ∈ {{0, 2}}, worst near x = 1 where it is Θ(|S|^(1/4)).");
    println!("The facility mix shows the small→large switch moving with x.");
}
