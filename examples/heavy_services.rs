//! The §5 future-work feature in action: a service catalogue with one
//! expensive outlier ("GPU inference") that violates Condition 1. Plain
//! PD-OMFLP predicts it into every large facility and pays the premium
//! repeatedly; the heavy-exclusion wrapper detects and isolates it.
//!
//! ```sh
//! cargo run --release --example heavy_services
//! ```

use omfl::core::algorithm::{run_online, OnlineAlgorithm};
use omfl::core::heavy::{detect_heavy, HeavyExclusion, HeavyInstances};
use omfl::prelude::*;
use omfl::workload::composite::uniform_line;
use omfl::workload::demand::DemandModel;
use std::sync::Arc;

fn main() {
    let services = 8u16;
    let gpu = services - 1; // the heavy service
    for premium in [0.0, 10.0, 40.0, 160.0] {
        let mut surcharge = vec![0.0; services as usize];
        surcharge[gpu as usize] = premium;
        let cost = CostModel::power(services, 1.0, 2.0)
            .with_surcharges(surcharge)
            .expect("valid surcharges");

        // Mostly light bundles; ~1/6 of requests touch the GPU service.
        let sc = uniform_line(
            12,
            18.0,
            240,
            DemandModel::Bundles {
                bundles: vec![
                    vec![0, 1, 2],
                    vec![2, 3, 4],
                    vec![4, 5, 6],
                    vec![1, 5],
                    vec![0, 3, 6],
                    vec![6, 7],
                ],
                noise: 0.0,
            },
            cost,
            77,
        )
        .expect("scenario");
        let inst = sc.instance();

        let mut plain = PdOmflp::new(inst);
        let plain_cost = run_online(&mut plain, &sc.requests).expect("plain PD");
        plain.solution().verify(inst).expect("feasible");

        let heavy = detect_heavy(inst, 4.0);
        let excl_cost = if heavy.is_empty() {
            plain_cost
        } else {
            let parts = HeavyInstances::build(Arc::clone(&sc.metric), sc.cost.clone(), &heavy)
                .expect("decomposition");
            let mut alg = HeavyExclusion::new(&parts);
            let c = run_online(&mut alg, &sc.requests).expect("wrapped PD");
            alg.solution().verify(&parts.original).expect("feasible");
            c
        };

        println!(
            "GPU premium {premium:>6.1}: detected heavy = {:?}, plain PD = {plain_cost:>8.2}, \
             heavy-exclusion = {excl_cost:>8.2}  ({})",
            heavy.iter().map(|h| h.0).collect::<Vec<_>>(),
            if excl_cost < plain_cost * 0.99 {
                format!(
                    "exclusion saves {:.0}%",
                    100.0 * (1.0 - excl_cost / plain_cost)
                )
            } else {
                "no benefit (Condition 1 holds)".to_string()
            },
        );
    }
    println!("\nThe paper's §5 intuition verified: 'heavy commodities should be avoided as far as possible'.");
}
