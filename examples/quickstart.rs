//! Quickstart: build an instance, serve a handful of online requests with
//! both paper algorithms, and inspect the solutions.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use omfl::prelude::*;

fn main() {
    // A small city: six sites on a line, five services, and a facility cost
    // that grows with the square root of the configuration size (class C,
    // x = 1 — the hardest exponent of Theorem 18).
    let metric = LineMetric::new(vec![0.0, 1.0, 2.0, 7.0, 8.0, 9.0]).unwrap();
    let cost = CostModel::power(5, 1.0, 3.0);
    let instance = Instance::new(Box::new(metric), 5, cost).unwrap();
    let u = instance.universe();

    // Clients arrive online: two neighbourhoods, overlapping demands.
    let requests = vec![
        Request::new(PointId(0), CommoditySet::from_ids(u, &[0, 1]).unwrap()),
        Request::new(PointId(1), CommoditySet::from_ids(u, &[1, 2]).unwrap()),
        Request::new(PointId(2), CommoditySet::from_ids(u, &[0, 2]).unwrap()),
        Request::new(PointId(3), CommoditySet::from_ids(u, &[3, 4]).unwrap()),
        Request::new(PointId(4), CommoditySet::from_ids(u, &[2, 3, 4]).unwrap()),
        Request::new(
            PointId(5),
            CommoditySet::from_ids(u, &[0, 1, 2, 3, 4]).unwrap(),
        ),
    ];

    // Deterministic primal–dual algorithm (Theorem 4: O(√|S|·log n)).
    let mut pd = PdOmflp::new(&instance);
    for r in &requests {
        let out = pd.serve(r).unwrap();
        println!(
            "PD   serve @{:<3} demand {:?}: opened {} facility(ies), connection cost {:.3}{}",
            r.location().to_string(),
            r.demand(),
            out.opened.len(),
            out.connection_cost,
            if out.served_by_large {
                "  [served by a large facility]"
            } else {
                ""
            },
        );
    }
    let sol = pd.solution();
    sol.verify(&instance)
        .expect("PD solutions are always feasible");
    println!(
        "PD   total: {:.3} (construction {:.3} + connection {:.3}), {} facilities ({} large)\n",
        sol.total_cost(),
        sol.construction_cost(),
        sol.connection_cost(),
        sol.facilities().len(),
        sol.num_large_facilities(),
    );

    // Randomized algorithm (Theorem 19: O(√|S|·log n / log log n) expected).
    let mut rand = RandOmflp::new(&instance, 42);
    for r in &requests {
        rand.serve(r).unwrap();
    }
    let rsol = rand.solution();
    rsol.verify(&instance)
        .expect("RAND solutions are always feasible");
    println!(
        "RAND total: {:.3} with seed 42 ({} facilities, {} large)",
        rsol.total_cost(),
        rsol.facilities().len(),
        rsol.num_large_facilities(),
    );

    // How good is that? Bracket OPT with the offline solvers.
    let greedy = GreedyOffline::new().solve(&instance, &requests).unwrap();
    let tightened = LocalSearch::new()
        .improve(&instance, &greedy, &requests)
        .unwrap();
    let dual_lb = DualLowerBound::compute(&instance, &requests).unwrap();
    println!(
        "\nOPT bracket: [{:.3}, {:.3}]  →  PD ratio ≤ {:.2}, RAND ratio ≤ {:.2}",
        dual_lb,
        tightened.total_cost(),
        sol.total_cost() / dual_lb,
        rsol.total_cost() / dual_lb,
    );
}
