//! Sweeps the whole scenario catalog — every workload family × all four
//! placement engines × several seeds — sharded across worker threads, and
//! prints the aggregated comparison table.
//!
//! The CSV written to `results/scenario_sweep.csv` is the repo's canonical
//! sweep artifact: it is committed, bit-reproducible (deterministic seeds,
//! thread-count-independent sharding), and diffed when engines change.
//!
//! ```sh
//! cargo run --release --example scenario_sweep
//! ```

use omfl::par::default_threads;
use omfl::sim::sweep::sweep_catalog;
use omfl::workload::catalog::{registry, CatalogProfile};
use std::path::Path;

fn main() {
    let profile = CatalogProfile::small();
    let trials = 3;
    let threads = default_threads();
    println!(
        "scenario catalog: {} families x 4 engines x {trials} seeds ({} points, |S| = {}, {} requests; {threads} threads)\n",
        registry().len(),
        profile.points,
        profile.services,
        profile.requests,
    );

    let table = sweep_catalog(&profile, 2020, trials, threads).expect("sweep");
    print!("{}", table.render());

    println!("\nfamilies and the regimes they probe:");
    for fam in registry() {
        println!("  {:<15} {}", fam.name, fam.regime.replace('\n', " "));
    }

    // Anchor at the workspace root so the tracked file is updated no matter
    // which directory the example is invoked from.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("results");
    let dir = dir.as_path();
    std::fs::create_dir_all(dir).expect("results dir");
    let path = dir.join("scenario_sweep.csv");
    std::fs::write(&path, table.to_csv()).expect("write csv");
    println!("\ncanonical csv: {}", path.display());
}
