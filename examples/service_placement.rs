//! The paper's motivating scenario end to end: a provider placing service
//! VMs in a network as clients appear online (paper §1).
//!
//! Compares all four placement engines on the same random network and
//! prints cost/latency reports.
//!
//! ```sh
//! cargo run --release --example service_placement
//! ```

use omfl::sim::{build_scenario, run_engine, Engine, SimConfig};

fn main() {
    let cfg = SimConfig {
        nodes: 60,
        extra_edges: 45,
        services: 8,
        requests: 400,
        vm_base_cost: 6.0,
        per_service_cost: 0.75,
        seed: 2020, // SPAA 2020
    };
    println!(
        "service network: {} nodes, {} services, {} client requests\n",
        cfg.nodes, cfg.services, cfg.requests
    );

    let scenario = build_scenario(&cfg).expect("scenario");
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>6} {:>6} {:>8} {:>8} {:>8}",
        "engine", "total", "constr", "connect", "facs", "large", "lat p50", "lat p95", "lat max"
    );
    for engine in [
        Engine::Pd,
        Engine::Rand { seed: 7 },
        Engine::PerCommodity,
        Engine::AllLarge,
    ] {
        let rep = run_engine(&scenario, engine).expect("run");
        println!(
            "{:<14} {:>9.2} {:>9.2} {:>9.2} {:>6} {:>6} {:>8.3} {:>8.3} {:>8.3}",
            rep.engine,
            rep.total_cost,
            rep.construction_cost,
            rep.connection_cost,
            rep.facilities,
            rep.large_facilities,
            rep.latency.p50,
            rep.latency.p95,
            rep.latency.max,
        );
    }

    // Cost-over-time for the PD engine: how spend accumulates as clients
    // arrive (useful for capacity planning dashboards).
    let rep = run_engine(&scenario, Engine::Pd).expect("run");
    println!("\nPD cumulative cost (every 50th request):");
    for (i, c) in rep.cost_over_time.iter().enumerate() {
        if (i + 1) % 50 == 0 {
            println!("  after {:>4} requests: {:>9.2}", i + 1, c);
        }
    }
}
