#!/usr/bin/env bash
# Checks that the root Cargo.toml's `default-members` covers every workspace
# member (plus the root facade "."). A root package makes bare
# `cargo build` / `cargo test` cover only the facade unless default-members
# lists the whole workspace — so a member added to `members` but not to
# `default-members` silently drops out of the tier-1 verify. CI runs this on
# every push; run it locally after adding a crate.
set -euo pipefail

# The check is only as good as the tools it parses with: refuse to run —
# loudly, with a distinct exit code — when any is missing, instead of
# degrading to a weaker parse (or a vacuous pass) that CI would read as
# green. `set -e` alone is not enough: a missing tool inside a $(…)
# pipeline with a fallback could still exit 0.
for tool in awk sort comm grep sed wc; do
  if ! command -v "$tool" >/dev/null 2>&1; then
    echo "error: required tool '$tool' not found; refusing to skip the default-members check" >&2
    exit 3
  fi
done

manifest="$(dirname "$0")/../Cargo.toml"

# Extracts the sorted entries of a top-level TOML string array.
extract() {
  awk -v key="$1" '
    $0 ~ "^"key" = \\[" { on = 1; next }
    on && /^\]/ { on = 0 }
    on {
      line = $0
      gsub(/[",]/, "", line)
      gsub(/^[ \t]+|[ \t]+$/, "", line)
      sub(/#.*/, "", line)
      if (line != "") print line
    }
  ' "$manifest" | sort
}

members="$(extract members)"
default_members="$(extract default-members | grep -v '^\.$' || true)"

if [ -z "$members" ]; then
  echo "error: could not parse workspace members from $manifest" >&2
  exit 2
fi

missing="$(comm -23 <(echo "$members") <(echo "$default_members"))"
extra="$(comm -13 <(echo "$members") <(echo "$default_members"))"

status=0
if [ -n "$missing" ]; then
  echo "error: workspace members missing from default-members (bare cargo test would skip them):" >&2
  echo "$missing" | sed 's/^/  - /' >&2
  echo "fix: add the lines above to the default-members array in $manifest, e.g.:" >&2
  echo "$missing" | sed 's/^/    "/;s/$/",/' >&2
  status=1
fi
if [ -n "$extra" ]; then
  echo "error: default-members entries that are not workspace members:" >&2
  echo "$extra" | sed 's/^/  - /' >&2
  echo "fix: remove them from default-members in $manifest (or add them to members)" >&2
  status=1
fi

if [ "$status" -ne 0 ]; then
  echo "members parsed from $manifest:" >&2
  echo "$members" | sed 's/^/  /' >&2
  echo "default-members parsed (root facade \".\" excluded):" >&2
  echo "${default_members:-"(none)"}" | sed 's/^/  /' >&2
else
  echo "default-members is in sync with members ($(echo "$members" | wc -l) crates + root facade)"
fi
exit "$status"
