//! # omfl — Online Multi-Commodity Facility Location
//!
//! A faithful, from-scratch Rust implementation of the algorithms and lower
//! bounds from *"The Online Multi-Commodity Facility Location Problem"*
//! (Castenow, Feldkord, Knollmann, Malatyali, Meyer auf der Heide — SPAA
//! 2020), together with every substrate the paper depends on: finite metric
//! spaces, commodity-set cost functions, single-commodity online facility
//! location baselines, offline solvers, adversarial workload generators, and
//! a network service-placement simulator.
//!
//! This crate is a facade that re-exports the workspace crates under stable
//! module names. Start with the quickstart below, the `examples/` directory,
//! or the experiment harness (`cargo run -p omfl-bench --release --bin
//! experiments -- --list`).
//!
//! ## Quickstart
//!
//! ```
//! use omfl::prelude::*;
//!
//! // Four points on a line; three commodities; power-law facility costs.
//! let metric = LineMetric::new(vec![0.0, 1.0, 2.0, 10.0]).unwrap();
//! let costs = CostModel::power(3, 1.0, 4.0); // g(sigma) = 4*|sigma|^{1/2}
//! let instance = Instance::new(Box::new(metric), 3, costs).unwrap();
//!
//! let mut alg = PdOmflp::new(&instance);
//! let universe = instance.universe();
//! let req = Request::new(PointId(0), CommoditySet::from_ids(universe, &[0, 2]).unwrap());
//! alg.serve(&req).unwrap();
//! let sol = alg.solution();
//! assert!(sol.verify(&instance).is_ok());
//! assert!(sol.total_cost() > 0.0);
//! ```

pub use omfl_baselines as baselines;
pub use omfl_commodity as commodity;
pub use omfl_core as core;
pub use omfl_metric as metric;
pub use omfl_par as par;
pub use omfl_serve as serve;
pub use omfl_sim as sim;
pub use omfl_workload as workload;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use omfl_baselines::{
        meyerson::MeyersonOfl,
        offline::{
            DualLowerBound, ExactArm, ExactOutcome, ExactResult, ExactSolver, ExhaustiveSolver,
            GreedyOffline, LocalSearch, OptBracket,
        },
        per_commodity::PerCommodity,
    };
    pub use omfl_commodity::{
        cost::{CostModel, FacilityCostFn},
        CommoditySet, Universe,
    };
    pub use omfl_core::{
        algorithm::{OnlineAlgorithm, ServeOutcome},
        instance::Instance,
        pd::PdOmflp,
        randalg::RandOmflp,
        request::Request,
        solution::Solution,
    };
    pub use omfl_metric::{
        dense::DenseMetric, euclidean::EuclideanMetric, graph::GraphMetric, line::LineMetric,
        Metric, PointId,
    };
    pub use omfl_serve::{ServeConfig, ServeReport, Server};
    pub use omfl_sim::{Engine, SimReport};
    pub use omfl_workload::catalog::CatalogProfile;
    pub use omfl_workload::scenario::Scenario;
}
