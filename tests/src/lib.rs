// Integration-test support helpers live in tests/tests/*.rs; this lib is intentionally small.
