//! Chaos acceptance: deterministic fault injection against the serve
//! layer. A tenant that panics, errors or fails verification is
//! quarantined with a typed reason and the arrival index that faulted;
//! every *healthy* tenant must finish bit-identically to a run without
//! the fault, at shard/thread configurations 1/2/7/16 — the same
//! determinism gate the clean serve suite enforces, now under fire.

use omfl_par::TaskPool;
use omfl_serve::{
    FaultPlan, QuarantineReason, ServeConfig, ServeReport, Server, INJECTED_PANIC_MARKER,
};
use omfl_sim::{build_scenario, ArrivalSource, Engine, SimConfig};
use omfl_workload::Scenario;
use std::sync::Once;
use std::time::Duration;

/// The shard/thread sweep every chaos assertion runs under.
const CONFIGS: [usize; 4] = [1, 2, 7, 16];

/// Silences the default panic-hook stderr spam for the panics this suite
/// injects on purpose; real panics still report. Installed once.
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !message.contains(INJECTED_PANIC_MARKER) {
                default_hook(info);
            }
        }));
    });
}

/// A small fleet of distinct tenant scenarios (different seeds and sizes).
fn tenant_fleet(n: usize) -> Vec<Scenario> {
    (0..n)
        .map(|t| {
            build_scenario(&SimConfig {
                nodes: 20 + 3 * t,
                extra_edges: 10,
                requests: 40 + 11 * t,
                seed: 1000 + t as u64,
                ..SimConfig::default()
            })
            .expect("scenario builds")
        })
        .collect()
}

fn lens(scenarios: &[Scenario]) -> Vec<usize> {
    scenarios.iter().map(|s| s.requests.len()).collect()
}

fn serve_faulted(
    scenarios: &[Scenario],
    source: &ArrivalSource,
    shards: usize,
    threads: usize,
    cfg_extra: &ServeConfig,
    plan: &FaultPlan,
) -> ServeReport {
    let pool = TaskPool::new(threads);
    let server = Server::new(scenarios, Engine::Pd).expect("pd tenants build");
    let cfg = ServeConfig {
        shards,
        ..cfg_extra.clone()
    };
    let (report, _telemetry) = server
        .serve_with_faults(source, &cfg, &pool, plan)
        .expect("serve survives injected faults");
    report
}

fn clean_baseline(scenarios: &[Scenario], source: &ArrivalSource) -> ServeReport {
    serve_faulted(
        scenarios,
        source,
        4,
        4,
        &ServeConfig::default(),
        &FaultPlan::default(),
    )
}

/// The tentpole gate: one tenant panics mid-stream; it is quarantined with
/// the exact fault coordinates, and at every shard/thread configuration
/// the healthy tenants' reports and digest are bit-identical to the clean
/// run restricted to the same subset.
#[test]
fn a_panicking_tenant_is_quarantined_and_healthy_tenants_are_bit_identical() {
    quiet_injected_panics();
    let scenarios = tenant_fleet(5);
    let source = ArrivalSource::round_robin(&lens(&scenarios));
    let clean = clean_baseline(&scenarios, &source);
    assert!(clean.quarantined.is_empty());

    let victim = 2u32;
    let fault_arrival = 13u32;
    let plan = FaultPlan::new().panic_at(victim, fault_arrival);
    for &(shards, threads) in &[(1, 1), (2, 2), (7, 7), (16, 16), (3, 16), (16, 2)] {
        let report = serve_faulted(
            &scenarios,
            &source,
            shards,
            threads,
            &ServeConfig::default(),
            &plan,
        );
        // The quarantine is typed and names the fault point.
        assert_eq!(report.quarantined.len(), 1);
        let q = &report.quarantined[0];
        assert_eq!(q.tenant, victim as usize);
        assert_eq!(q.arrival, Some(fault_arrival));
        match &q.reason {
            QuarantineReason::Panic { message } => {
                assert!(
                    message.contains(INJECTED_PANIC_MARKER),
                    "panic payload preserved: {message}"
                );
            }
            other => panic!("expected a Panic reason, got {other:?}"),
        }
        assert!(report.is_quarantined(victim as usize));
        // The victim froze exactly at the fault: arrivals before the
        // panicking one were served, nothing after.
        assert_eq!(
            report.tenants[victim as usize].requests,
            fault_arrival as usize
        );
        // Healthy tenants are bit-identical to the clean run, per tenant
        // and in digest over the same subset.
        for (t, rep) in report.tenants.iter().enumerate() {
            if t != victim as usize {
                assert_eq!(
                    rep, &clean.tenants[t],
                    "healthy tenant {t} diverged at shards={shards} threads={threads}"
                );
            }
        }
        assert_eq!(
            report.digest,
            clean.digest_over(|t| t != victim as usize),
            "healthy-subset digest diverged at shards={shards} threads={threads}"
        );
    }
}

/// A seeded multi-fault plan behaves the same way: every planned tenant
/// quarantined at its planned arrival, everyone else untouched — and the
/// faulted runs agree with each other across configurations.
#[test]
fn seeded_fault_plans_quarantine_exactly_the_planned_tenants() {
    quiet_injected_panics();
    let scenarios = tenant_fleet(6);
    let ls = lens(&scenarios);
    let source = ArrivalSource::round_robin(&ls);
    let clean = clean_baseline(&scenarios, &source);

    let plan = FaultPlan::seeded(0xC4A05, &ls, 2);
    let planned: Vec<(u32, u32)> = plan.panic_points().collect();
    assert_eq!(planned.len(), 2);

    let mut reports = Vec::new();
    for &n in &CONFIGS {
        let report = serve_faulted(&scenarios, &source, n, n, &ServeConfig::default(), &plan);
        let seen: Vec<(u32, u32)> = report
            .quarantined
            .iter()
            .map(|q| {
                (
                    q.tenant as u32,
                    q.arrival.expect("panic faults carry an arrival"),
                )
            })
            .collect();
        assert_eq!(seen, planned);
        assert_eq!(
            report.digest,
            clean.digest_over(|t| !planned.iter().any(|&(pt, _)| pt as usize == t))
        );
        reports.push(report);
    }
    // Faulted runs are deterministic across shard/thread configurations.
    assert!(reports.windows(2).all(|w| w[0] == w[1]));
}

/// The non-unwinding fault path: an injected engine error quarantines with
/// an `EngineError` reason and the same healthy-tenant guarantees.
#[test]
fn an_injected_engine_error_quarantines_without_a_panic() {
    quiet_injected_panics();
    let scenarios = tenant_fleet(4);
    let source = ArrivalSource::round_robin(&lens(&scenarios));
    let clean = clean_baseline(&scenarios, &source);

    let plan = FaultPlan::new().error_at(0, 7);
    for &n in &CONFIGS {
        let report = serve_faulted(&scenarios, &source, n, n, &ServeConfig::default(), &plan);
        assert_eq!(report.quarantined.len(), 1);
        let q = &report.quarantined[0];
        assert_eq!((q.tenant, q.arrival), (0, Some(7)));
        match &q.reason {
            QuarantineReason::EngineError { error } => {
                assert!(error.contains(INJECTED_PANIC_MARKER), "{error}");
            }
            other => panic!("expected EngineError, got {other:?}"),
        }
        assert_eq!(report.digest, clean.digest_over(|t| t != 0));
    }
}

/// Quarantine is visible through snapshot handles: the victim's snapshot
/// freezes at its pre-fault state with `valid` cleared, while healthy
/// tenants' final snapshots stay valid with their full arrival counts.
#[test]
fn quarantined_snapshots_are_invalidated_and_healthy_ones_stay_valid() {
    quiet_injected_panics();
    let scenarios = tenant_fleet(3);
    let ls = lens(&scenarios);
    let source = ArrivalSource::round_robin(&ls);
    let victim = 1u32;
    let plan = FaultPlan::new().panic_at(victim, 20);

    let pool = TaskPool::new(4);
    let server = Server::new(&scenarios, Engine::Pd).expect("pd tenants build");
    let handles: Vec<_> = (0..scenarios.len())
        .map(|t| server.snapshot_handle(t).expect("tenant not poisoned"))
        .collect();
    let (report, _) = server
        .serve_with_faults(&source, &ServeConfig::default(), &pool, &plan)
        .expect("serve survives the fault");
    assert_eq!(report.quarantined.len(), 1);

    for (t, handle) in handles.iter().enumerate() {
        let snap = handle.read();
        if t == victim as usize {
            assert!(!snap.valid, "the victim's snapshot must be flagged invalid");
            assert!(
                snap.arrivals <= 20,
                "the frozen snapshot cannot be past the fault point"
            );
        } else {
            assert!(snap.valid);
            assert_eq!(snap.arrivals, ls[t]);
        }
    }
}

/// Deadline shedding: a tenant stalled well past the per-batch budget
/// sheds its remaining arrivals in each batch — and only that tenant does.
/// Shed counts are wall-clock telemetry, so the assertion is directional
/// (the stalled tenant sheds, the fast ones do not), not exact.
#[test]
fn deadlines_shed_only_the_slow_tenant() {
    quiet_injected_panics();
    let scenarios = tenant_fleet(3);
    let ls = lens(&scenarios);
    let source = ArrivalSource::round_robin(&ls);
    let slow = 0u32;
    // Stall the slow tenant's first arrival of several micro-batches far
    // past the budget; with round-robin interleaving each micro-batch
    // holds multiple arrivals per tenant, so there is always something
    // left to shed after the stall burns the budget.
    let mut plan = FaultPlan::new();
    for batch_first in [0u32, 3, 6, 9] {
        plan = plan.stall_at(slow, batch_first, Duration::from_millis(30));
    }
    let cfg = ServeConfig {
        micro_batch: 9, // three arrivals per tenant per batch
        deadline: Some(Duration::from_millis(5)),
        ..ServeConfig::default()
    };

    let pool = TaskPool::new(2);
    let server = Server::new(&scenarios, Engine::Pd).expect("pd tenants build");
    let (report, telemetry) = server
        .serve_with_faults(&source, &cfg, &pool, &plan)
        .expect("serve succeeds");
    assert!(report.quarantined.is_empty(), "stalls are not faults");
    assert!(
        telemetry.shed[slow as usize] > 0,
        "the stalled tenant must shed past the deadline (shed = {:?})",
        telemetry.shed
    );
    for t in 1..scenarios.len() {
        assert_eq!(telemetry.shed[t], 0, "fast tenants must not shed");
    }
    // Shed arrivals are skipped, not served late.
    assert!(report.tenants[slow as usize].requests < ls[slow as usize]);
    assert_eq!(
        report.tenants[slow as usize].requests as u64 + telemetry.shed[slow as usize],
        ls[slow as usize] as u64,
        "every arrival of the slow tenant is either served or counted shed"
    );
}

/// Forced ring-full episodes: a consumer stall against a tiny ring drives
/// producer backpressure (and with the bounded push, *not* a deadlock),
/// while the report stays bit-identical to an unstalled run.
#[test]
fn forced_ring_full_episodes_change_telemetry_but_not_results() {
    quiet_injected_panics();
    let scenarios = tenant_fleet(3);
    let source = ArrivalSource::round_robin(&lens(&scenarios));
    let clean = clean_baseline(&scenarios, &source);

    let cfg = ServeConfig {
        micro_batch: 8,
        queue_capacity: 8,
        ..ServeConfig::default()
    };
    let plan = FaultPlan::new()
        .stall_batch(0, Duration::from_millis(20))
        .stall_batch(2, Duration::from_millis(20));
    let pool = TaskPool::new(4);
    let server = Server::new(&scenarios, Engine::Pd).expect("pd tenants build");
    let (report, telemetry) = server
        .serve_with_faults(&source, &cfg, &pool, &plan)
        .expect("serve succeeds");
    assert!(
        telemetry.backpressure_waits > 0,
        "a stalled consumer on a tiny ring must block the producer"
    );
    assert!(
        !telemetry.ingest_gave_up,
        "the default budget outlasts 20 ms"
    );
    assert!(report.quarantined.is_empty());
    assert_eq!(report, clean, "backpressure must never change results");
}

/// Every tenant faulted: the run still terminates (the ring closes early
/// instead of serving a stream nobody wants) and reports all quarantines.
#[test]
fn an_entirely_quarantined_fleet_still_terminates_cleanly() {
    quiet_injected_panics();
    let scenarios = tenant_fleet(3);
    let source = ArrivalSource::round_robin(&lens(&scenarios));
    let plan = FaultPlan::new()
        .panic_at(0, 0)
        .panic_at(1, 0)
        .panic_at(2, 0);
    for &n in &CONFIGS {
        let report = serve_faulted(&scenarios, &source, n, n, &ServeConfig::default(), &plan);
        assert_eq!(report.quarantined.len(), 3);
        assert_eq!(report.arrivals, 0, "no healthy tenant, no healthy arrivals");
        assert!(report.tenants.iter().all(|t| t.requests == 0));
    }
}
