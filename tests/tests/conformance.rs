//! Engine-conformance suite: every catalog scenario family through all four
//! engines, checked against the paper's bound curves.
//!
//! For each family the suite asserts:
//!
//! * feasibility everywhere — `run_engine` verifies `Solution::verify` and
//!   any infeasibility surfaces as an error;
//! * no engine beats the certified lower bound on OPT (dual LB of
//!   Corollary 17 + the serve-alone bound);
//! * PD stays under the Theorem 4 curve `O(√|S|·ln n)` measured against the
//!   offline greedy upper bound on OPT;
//! * the per-commodity decomposition respects its §1.3 shape
//!   `O(|S|·ln n / ln ln n)` and *never* predicts (no large facilities, no
//!   large serves — the structure behind the Theorem 2 separation);
//! * the all-large baseline *always* predicts (every request served large)
//!   and stays `O(log n)`-competitive against the greedy upper bound of its
//!   collapsed single-commodity instance (the projection its Fotakis engine
//!   actually runs on).

use omfl_baselines::all_large::AllLargeParts;
use omfl_baselines::offline::{
    serve_alone_lower_bound, DualLowerBound, ExactSolver, GreedyOffline,
};
use omfl_commodity::CommoditySet;
use omfl_core::bounds;
use omfl_core::request::Request;
use omfl_sim::{run_engine, Engine};
use omfl_workload::catalog::{by_name, registry, CatalogProfile};
use omfl_workload::Scenario;
use std::sync::Arc;

/// Generous slack on the bound curves: the theorems hide small constants,
/// and these are sanity ceilings, not tightness measurements.
const CURVE_SLACK: f64 = 8.0;

fn profile() -> CatalogProfile {
    CatalogProfile::small()
}

/// Greedy upper bound on OPT for the scenario's own instance.
fn greedy_upper(sc: &Scenario) -> f64 {
    GreedyOffline::new()
        .solve(sc.instance(), &sc.requests)
        .expect("greedy")
        .total_cost()
}

/// Certified lower bound on OPT (max of dual LB and serve-alone LB).
fn opt_lower(sc: &Scenario) -> f64 {
    let dual = DualLowerBound::compute(sc.instance(), &sc.requests).expect("dual LB");
    let alone = serve_alone_lower_bound(sc.instance(), &sc.requests).expect("serve-alone LB");
    dual.max(alone)
}

#[test]
fn all_families_feasible_on_all_engines() {
    for fam in registry() {
        let sc = fam.build(&profile(), 11).expect(fam.name);
        let lower = opt_lower(&sc);
        for engine in Engine::all(23) {
            let rep = run_engine(&sc, engine)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", engine.name(), fam.name));
            assert_eq!(rep.requests, sc.len(), "{} on {}", rep.engine, fam.name);
            assert!(
                (rep.total_cost - (rep.construction_cost + rep.connection_cost)).abs()
                    < 1e-9 * (1.0 + rep.total_cost),
                "{} on {}: cost parts do not add up",
                rep.engine,
                fam.name
            );
            // A feasible online solution can never undercut OPT's lower bound.
            assert!(
                rep.total_cost >= lower - 1e-6,
                "{} on {}: cost {} below OPT lower bound {lower}",
                rep.engine,
                fam.name,
                rep.total_cost
            );
            assert!(
                rep.cost_over_time.windows(2).all(|w| w[1] >= w[0] - 1e-9),
                "{} on {}: cumulative cost decreased",
                rep.engine,
                fam.name
            );
        }
    }
}

#[test]
fn pd_stays_under_the_theorem4_curve_on_every_family() {
    for fam in registry() {
        let sc = fam.build(&profile(), 11).expect(fam.name);
        let s = sc.instance().num_commodities();
        let n = sc.instance().num_points();
        let upper = greedy_upper(&sc);
        let pd = run_engine(&sc, Engine::Pd).expect(fam.name);
        let ceiling = CURVE_SLACK * bounds::pd_upper(s, n) * upper;
        assert!(
            pd.total_cost <= ceiling,
            "{}: PD cost {} exceeds Theorem 4 ceiling {ceiling} \
             (√S·ln n = {}, greedy OPT upper = {upper})",
            fam.name,
            pd.total_cost,
            bounds::pd_upper(s, n)
        );
    }
}

#[test]
fn per_commodity_respects_its_decomposition_bound_and_never_predicts() {
    for fam in registry() {
        let sc = fam.build(&profile(), 11).expect(fam.name);
        let s = sc.instance().num_commodities();
        let n = sc.instance().num_points();
        let upper = greedy_upper(&sc);
        let rep = run_engine(&sc, Engine::PerCommodity).expect(fam.name);
        // §1.3 shape: O(|S| · ln n / ln ln n) against OPT.
        let ceiling = CURVE_SLACK * bounds::decomposition_upper(s, n) * upper;
        assert!(
            rep.total_cost <= ceiling,
            "{}: per-commodity cost {} exceeds decomposition ceiling {ceiling}",
            fam.name,
            rep.total_cost
        );
        // Structural half of the separation: the decomposition never opens a
        // large facility and never serves a request in large mode.
        assert_eq!(rep.large_facilities, 0, "{}", fam.name);
        assert_eq!(rep.large_serves, 0, "{}", fam.name);
    }
}

#[test]
fn all_large_always_predicts_and_tracks_its_collapsed_instance() {
    for fam in registry() {
        let sc = fam.build(&profile(), 11).expect(fam.name);
        let n = sc.instance().num_points();
        let rep = run_engine(&sc, Engine::AllLarge).expect(fam.name);
        // Structural: every request is served by a single large facility and
        // every opened facility is large.
        assert_eq!(rep.large_serves, rep.requests, "{}", fam.name);
        assert_eq!(rep.large_facilities, rep.facilities, "{}", fam.name);

        // Cost: the engine is a single-commodity OFL on the collapsed
        // instance (every demand widened to S, facilities priced f^S), so it
        // must stay O(ln n)-competitive against that instance's greedy OPT
        // upper bound.
        let parts = AllLargeParts::build(Arc::clone(&sc.metric), sc.cost.clone()).expect("parts");
        let collapsed_reqs: Vec<Request> = sc
            .requests
            .iter()
            .map(|r| Request::new(r.location(), CommoditySet::full(parts.collapsed.universe())))
            .collect();
        let collapsed_upper = GreedyOffline::new()
            .solve(&parts.collapsed, &collapsed_reqs)
            .expect("collapsed greedy")
            .total_cost();
        let ceiling = CURVE_SLACK * (1.0 + (n.max(2) as f64).ln()) * collapsed_upper;
        assert!(
            rep.total_cost <= ceiling,
            "{}: all-large cost {} exceeds collapsed-instance ceiling {ceiling}",
            fam.name,
            rep.total_cost
        );
    }
}

#[test]
fn rand_stays_under_the_theorem19_curve_on_every_family() {
    for fam in registry() {
        let sc = fam.build(&profile(), 11).expect(fam.name);
        let s = sc.instance().num_commodities();
        let n = sc.instance().num_points();
        let upper = greedy_upper(&sc);
        // One seed per family is a smoke bound, not an expectation estimate;
        // Theorem 19's curve is checked with the same generous slack.
        let rep = run_engine(&sc, Engine::Rand { seed: 23 }).expect(fam.name);
        let ceiling = CURVE_SLACK * bounds::pd_upper(s, n).max(bounds::rand_upper(s, n)) * upper;
        assert!(
            rep.total_cost <= ceiling,
            "{}: RAND cost {} exceeds curve ceiling {ceiling}",
            fam.name,
            rep.total_cost
        );
    }
}

/// ROADMAP direction 3 acceptance: the Lagrangian branch-and-bound
/// certifies exact OPT (gap = 0) on catalog-derived request prefixes at
/// `|M| = 200`, the certified optimum sits inside the dual/greedy bracket,
/// and PD's *true* competitive ratio (online / certified OPT) stays under
/// the Theorem 4 curve.
#[test]
fn exact_certifies_at_two_hundred_points() {
    let profile = CatalogProfile {
        points: 200,
        services: 6,
        requests: 48,
    };
    for name in ["zipf-services", "burst-arrivals", "tree-hierarchy"] {
        let fam = by_name(name).unwrap_or_else(|| panic!("{name} missing"));
        let sc = fam.build(&profile, 404).expect(name);
        let inst = sc.instance();
        assert_eq!(inst.num_points(), 200, "{name}");
        let n = sc.requests.len();
        let mut full_stream_opt = None;
        for prefix in [n / 4, n] {
            let reqs = &sc.requests[..prefix];
            let res = ExactSolver::new()
                .solve_bounded(inst, reqs)
                .unwrap_or_else(|e| panic!("{name}[..{prefix}]: {e}"));
            assert!(
                res.certified(),
                "{name}[..{prefix}]: budget exhausted at {} nodes, gap {}",
                res.nodes_expanded,
                res.gap
            );
            assert_eq!(res.gap, 0.0, "{name}[..{prefix}]");
            let opt = res.upper_bound;
            let tol = 1e-6 * (1.0 + opt);

            // LB ≤ OPT ≤ greedy.
            let dual = DualLowerBound::compute(inst, reqs).expect("dual LB");
            let alone = serve_alone_lower_bound(inst, reqs).expect("serve-alone LB");
            let greedy = GreedyOffline::new()
                .solve(inst, reqs)
                .expect("greedy")
                .total_cost();
            assert!(
                dual.max(alone) <= opt + tol,
                "{name}[..{prefix}]: LB {} above certified OPT {opt}",
                dual.max(alone)
            );
            assert!(
                opt <= greedy + tol,
                "{name}[..{prefix}]: certified OPT {opt} above greedy {greedy}"
            );
            // The Lagrangian root bound is itself a valid LB.
            assert!(res.root_bound <= opt + tol, "{name}[..{prefix}]");
            if prefix == n {
                full_stream_opt = Some(opt);
            }
        }

        // True competitive ratio against the certified optimum of the full
        // stream, under the paper's PD curve.
        let opt = full_stream_opt.expect("full-stream prefix ran");
        assert!(opt > 0.0, "{name}");
        let rep = run_engine(&sc, Engine::Pd).expect(name);
        let ratio = rep.total_cost / opt;
        let curve = CURVE_SLACK * bounds::pd_upper(inst.num_commodities(), sc.len());
        assert!(
            ratio >= 1.0 - 1e-9,
            "{name}: online {} beat certified OPT {opt}",
            rep.total_cost
        );
        assert!(
            ratio <= curve,
            "{name}: true ratio {ratio} above Theorem 4 curve {curve}"
        );
    }
}
