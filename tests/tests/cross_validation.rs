//! Differential tests between independent implementations of the same
//! mathematics — the strongest correctness signal this repository has.

use omfl_baselines::fotakis::FotakisOfl;
use omfl_baselines::project::single_commodity_instance;
use omfl_commodity::cost::CostModel;
use omfl_commodity::{CommodityId, CommoditySet};
use omfl_core::algorithm::run_online_verified;
use omfl_core::heavy::{HeavyExclusion, HeavyInstances};
use omfl_core::pd::PdOmflp;
use omfl_core::request::Request;
use omfl_metric::line::LineMetric;
use omfl_metric::{Metric, PointId};
use std::sync::Arc;

/// PD-OMFLP restricted to one commodity runs the same primal–dual process
/// as the standalone Fotakis engine, except that PD tracks *two* facility
/// families (small and large, identical configurations when |S| = 1) whose
/// bid pools differ slightly — small-facility openings do not shrink the
/// large-facility caps. Costs therefore agree up to a small constant, not
/// exactly.
#[test]
fn pd_close_to_fotakis_on_single_commodity_instances() {
    for seed in 0..5u64 {
        let positions: Vec<f64> = (0..8)
            .map(|i| ((seed.wrapping_mul(2654435761).wrapping_add(i * 37) % 97) as f64) / 7.0)
            .collect();
        let metric: Arc<dyn Metric> = Arc::new(LineMetric::new(positions).unwrap());
        let inst = single_commodity_instance(
            metric,
            CostModel::power(1, 2.0, 2.0 + seed as f64),
            CommodityId(0),
        )
        .unwrap();
        let reqs: Vec<Request> = (0..30u32)
            .map(|i| {
                Request::new(
                    PointId((i * 5 + seed as u32) % 8),
                    CommoditySet::full(inst.universe()),
                )
            })
            .collect();

        let mut pd = PdOmflp::new(&inst);
        let pd_cost = run_online_verified(&mut pd, &inst, &reqs).unwrap();
        let mut fo = FotakisOfl::new(&inst).unwrap();
        let fo_cost = run_online_verified(&mut fo, &inst, &reqs).unwrap();
        let rel = (pd_cost - fo_cost).abs() / fo_cost.max(1e-9);
        assert!(
            rel < 0.25,
            "seed {seed}: PD {pd_cost} vs Fotakis {fo_cost} differ by {:.0}%",
            rel * 100.0
        );
    }
}

/// With an empty heavy set, the heavy-exclusion wrapper is plain PD over a
/// re-indexed (identical) universe — costs must match exactly.
#[test]
fn heavy_exclusion_with_no_heavy_commodities_is_plain_pd() {
    let metric: Arc<dyn Metric> = Arc::new(LineMetric::new(vec![0.0, 2.0, 5.0, 9.0]).unwrap());
    let cost = CostModel::power(5, 1.0, 2.0);
    let parts = HeavyInstances::build(Arc::clone(&metric), cost.clone(), &[]).unwrap();
    let inst = &parts.original;
    let u = inst.universe();
    let reqs: Vec<Request> = (0..25u32)
        .map(|i| {
            Request::new(
                PointId(i % 4),
                CommoditySet::from_ids(u, &[(i % 5) as u16, ((i * 2 + 1) % 5) as u16]).unwrap(),
            )
        })
        .collect();

    let mut wrapped = HeavyExclusion::new(&parts);
    let wrapped_cost = run_online_verified(&mut wrapped, inst, &reqs).unwrap();

    let mut plain = PdOmflp::new(inst);
    let plain_cost = run_online_verified(&mut plain, inst, &reqs).unwrap();

    assert!(
        (wrapped_cost - plain_cost).abs() < 1e-9 * (1.0 + plain_cost),
        "wrapped {wrapped_cost} vs plain {plain_cost}"
    );
}

/// RAND-OMFLP on a single-commodity instance uses Meyerson's classes with
/// X = Z, but by design flips *both* the small-facility and large-facility
/// coins (Lemma 20 equalizes the expected spend of the two families), so
/// its expected cost sits between 1× and ≈2.5× Meyerson's.
#[test]
fn rand_brackets_meyerson_in_expectation_on_single_commodity() {
    use omfl_baselines::meyerson::MeyersonOfl;
    use omfl_core::randalg::RandOmflp;

    let metric: Arc<dyn Metric> =
        Arc::new(LineMetric::new(vec![0.0, 1.0, 3.0, 6.5, 10.0]).unwrap());
    let inst =
        single_commodity_instance(metric, CostModel::power(1, 2.0, 4.0), CommodityId(0)).unwrap();
    let reqs: Vec<Request> = (0..40u32)
        .map(|i| Request::new(PointId((i * 3) % 5), CommoditySet::full(inst.universe())))
        .collect();

    let trials = 40;
    let mut rand_total = 0.0;
    let mut mey_total = 0.0;
    for seed in 0..trials {
        let mut r = RandOmflp::new(&inst, seed);
        rand_total += run_online_verified(&mut r, &inst, &reqs).unwrap();
        let mut m = MeyersonOfl::new(&inst, seed ^ 0x5555).unwrap();
        mey_total += run_online_verified(&mut m, &inst, &reqs).unwrap();
    }
    let (rand_mean, mey_mean) = (rand_total / trials as f64, mey_total / trials as f64);
    let ratio = rand_mean / mey_mean;
    assert!(
        (0.9..=2.5).contains(&ratio),
        "single-commodity RAND ({rand_mean}) vs Meyerson ({mey_mean}): ratio {ratio} outside \
         the two-coin-family bracket"
    );
}

/// The per-commodity decomposition cost equals the sum of independent
/// single-commodity runs (by construction — this guards the mirroring).
#[test]
fn decomposition_cost_equals_sum_of_projections() {
    use omfl_baselines::per_commodity::{PerCommodity, PerCommodityParts};

    let metric: Arc<dyn Metric> = Arc::new(LineMetric::new(vec![0.0, 4.0, 9.0]).unwrap());
    let cost = CostModel::power(3, 1.0, 2.0);
    let parts = PerCommodityParts::build(Arc::clone(&metric), cost.clone()).unwrap();
    let u = parts.original.universe();
    let reqs: Vec<Request> = (0..18u32)
        .map(|i| {
            Request::new(
                PointId(i % 3),
                CommoditySet::from_ids(u, &[(i % 3) as u16]).unwrap(),
            )
        })
        .collect();
    let mut dec = PerCommodity::new_pd(&parts);
    let dec_cost = run_online_verified(&mut dec, &parts.original, &reqs).unwrap();

    // Independent per-commodity runs.
    let mut sum = 0.0;
    for e in 0..3u16 {
        let sub =
            single_commodity_instance(Arc::clone(&metric), cost.clone(), CommodityId(e)).unwrap();
        let sub_reqs: Vec<Request> = reqs
            .iter()
            .filter(|r| r.demand().contains(CommodityId(e)))
            .map(|r| Request::new(r.location(), CommoditySet::full(sub.universe())))
            .collect();
        let mut pd = PdOmflp::new(&sub);
        sum += run_online_verified(&mut pd, &sub, &sub_reqs).unwrap();
    }
    assert!(
        (dec_cost - sum).abs() < 1e-9 * (1.0 + sum),
        "decomposition {dec_cost} vs independent sum {sum}"
    );
}
