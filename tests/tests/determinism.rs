//! Determinism guarantees the sweep harness and the committed canonical CSV
//! rely on: identical configs produce bit-identical `SimReport`s, and the
//! sharded sweep produces the identical table at every thread count — now
//! including adversarially skewed matrices where one cell dominates
//! wall-clock and the work-stealing scheduler actually redistributes work.

use omfl_core::CoreError;
use omfl_sim::sweep::{aggregate, sweep, sweep_catalog};
use omfl_sim::{run_engine, Engine};
use omfl_workload::catalog::{by_name, registry, CatalogProfile, Family};
use omfl_workload::Scenario;
use std::time::{Duration, Instant};

fn profile() -> CatalogProfile {
    CatalogProfile {
        points: 10,
        services: 8,
        requests: 30,
    }
}

#[test]
fn pd_and_rand_reports_are_bit_identical_across_repeat_runs() {
    for fam in registry() {
        let sc = fam.build(&profile(), 5).expect(fam.name);
        for engine in [Engine::Pd, Engine::Rand { seed: 77 }] {
            let a = run_engine(&sc, engine).expect(fam.name);
            let b = run_engine(&sc, engine).expect(fam.name);
            // PartialEq over every field, including the f64 latency stats
            // and the full cost-over-time trace — bit-identical, not "close".
            assert_eq!(a, b, "{} on {} not reproducible", engine.name(), fam.name);
        }
    }
}

#[test]
fn rand_seed_actually_changes_the_run() {
    // Guards against a silently ignored seed, which would make the
    // determinism assertions above vacuous.
    let fam = registry().into_iter().next().unwrap();
    let sc = fam.build(&profile(), 5).unwrap();
    let a = run_engine(&sc, Engine::Rand { seed: 1 }).unwrap();
    let b = run_engine(&sc, Engine::Rand { seed: 2 }).unwrap();
    assert_ne!(
        a.cost_over_time, b.cost_over_time,
        "different RAND seeds should diverge on this workload"
    );
}

#[test]
fn sweep_cells_are_identical_across_thread_counts() {
    let families = registry();
    let engines = [Engine::Pd, Engine::Rand { seed: 9 }];
    let reference = sweep(&families, &profile(), &engines, 42, 2, 1).unwrap();
    for threads in [2, 3, 7, 64] {
        let cells = sweep(&families, &profile(), &engines, 42, 2, threads).unwrap();
        assert_eq!(cells, reference, "threads = {threads}");
    }
}

#[test]
fn aggregated_table_and_csv_are_thread_count_independent() {
    let a = sweep_catalog(&profile(), 7, 2, 1).unwrap();
    let b = sweep_catalog(&profile(), 7, 2, 6).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.render(), b.render());
    // The table covers the full (family × engine) matrix.
    assert_eq!(a.rows.len(), registry().len() * 4);
}

/// A catalog family ~100× heavier than its siblings: same generator as
/// `zipf-services`, but the profile's request count is multiplied so one
/// (family, trial) cell dominates the sweep's wall-clock.
fn heavy_family() -> Family {
    fn build(p: &CatalogProfile, seed: u64) -> Result<Scenario, CoreError> {
        let heavy = CatalogProfile {
            points: p.points,
            services: p.services,
            requests: p.requests * 100,
        };
        by_name("zipf-services")
            .expect("registry family")
            .build(&heavy, seed)
    }
    Family::new(
        "zipf-services-x100",
        "scheduler-skew adversary: one cell ~100x slower than the rest",
        build,
    )
}

#[test]
fn skewed_sweep_tables_are_bit_identical_for_1_2_7_16_threads() {
    // The heavy family goes FIRST: under the old chunk-static scheduler its
    // cells all landed in worker 0's chunk, which is exactly the layout a
    // scheduler rewrite could silently reorder. Tables must not care.
    let mut families = vec![heavy_family()];
    families.extend(registry().into_iter().take(3));
    let profile = CatalogProfile {
        points: 10,
        services: 8,
        requests: 12, // heavy cell serves 1200
    };
    let engines = [Engine::Pd, Engine::Rand { seed: 5 }];
    let reference = sweep(&families, &profile, &engines, 31, 2, 1).unwrap();
    for threads in [2, 7, 16] {
        let cells = sweep(&families, &profile, &engines, 31, 2, threads).unwrap();
        assert_eq!(cells, reference, "threads = {threads}");
    }
    let ref_table = aggregate(&reference);
    for threads in [2, 7, 16] {
        let table = aggregate(&sweep(&families, &profile, &engines, 31, 2, threads).unwrap());
        assert_eq!(table.to_csv(), ref_table.to_csv(), "threads = {threads}");
    }
}

#[test]
fn slow_cell_does_not_serialize_the_schedule() {
    // Starvation regression for the work-stealing scheduler. All four slow
    // items sit in what a chunk-static split over 8 threads would hand to
    // worker 0, so without stealing the schedule serializes them:
    // 4 × 80 ms = 320 ms on one worker. With stealing they spread across
    // idle workers and the whole map finishes in ≈ one slow item. Sleeps
    // (not spins) keep the assertion independent of CPU speed; the bound is
    // generous — 2.5× the ideal — to absorb CI scheduling noise while
    // staying far below the serialized 320 ms.
    let items: Vec<u64> = (0..32).collect();
    let t0 = Instant::now();
    let out = omfl_par::parallel_map(&items, 8, |_, &x| {
        std::thread::sleep(Duration::from_millis(if x < 4 { 80 } else { 2 }));
        x
    });
    let elapsed = t0.elapsed();
    assert_eq!(out, items, "results must stay in input order");
    assert!(
        elapsed < Duration::from_millis(200),
        "slow cells serialized the sweep: {elapsed:?} (work-stealing should \
         finish in ~80-160 ms; chunk-static takes ≥ 320 ms)"
    );
}

#[test]
fn sweep_cells_aggregate_consistently() {
    let families = registry();
    let engines = [Engine::Pd];
    let cells = sweep(&families, &profile(), &engines, 3, 3, 2).unwrap();
    let table = aggregate(&cells);
    for row in &table.rows {
        let group: Vec<f64> = cells
            .iter()
            .filter(|c| c.family == row.family && c.engine == row.engine)
            .map(|c| c.report.total_cost)
            .collect();
        assert_eq!(group.len(), row.cost.n);
        let mean = group.iter().sum::<f64>() / group.len() as f64;
        assert!((mean - row.cost.mean).abs() < 1e-12 * (1.0 + mean));
    }
}
