//! Determinism guarantees the sweep harness and the committed canonical CSV
//! rely on: identical configs produce bit-identical `SimReport`s, and the
//! sharded sweep produces the identical table at every thread count.

use omfl_sim::sweep::{aggregate, sweep, sweep_catalog};
use omfl_sim::{run_engine, Engine};
use omfl_workload::catalog::{registry, CatalogProfile};

fn profile() -> CatalogProfile {
    CatalogProfile {
        points: 10,
        services: 8,
        requests: 30,
    }
}

#[test]
fn pd_and_rand_reports_are_bit_identical_across_repeat_runs() {
    for fam in registry() {
        let sc = fam.build(&profile(), 5).expect(fam.name);
        for engine in [Engine::Pd, Engine::Rand { seed: 77 }] {
            let a = run_engine(&sc, engine).expect(fam.name);
            let b = run_engine(&sc, engine).expect(fam.name);
            // PartialEq over every field, including the f64 latency stats
            // and the full cost-over-time trace — bit-identical, not "close".
            assert_eq!(a, b, "{} on {} not reproducible", engine.name(), fam.name);
        }
    }
}

#[test]
fn rand_seed_actually_changes_the_run() {
    // Guards against a silently ignored seed, which would make the
    // determinism assertions above vacuous.
    let fam = registry().into_iter().next().unwrap();
    let sc = fam.build(&profile(), 5).unwrap();
    let a = run_engine(&sc, Engine::Rand { seed: 1 }).unwrap();
    let b = run_engine(&sc, Engine::Rand { seed: 2 }).unwrap();
    assert_ne!(
        a.cost_over_time, b.cost_over_time,
        "different RAND seeds should diverge on this workload"
    );
}

#[test]
fn sweep_cells_are_identical_across_thread_counts() {
    let families = registry();
    let engines = [Engine::Pd, Engine::Rand { seed: 9 }];
    let reference = sweep(&families, &profile(), &engines, 42, 2, 1).unwrap();
    for threads in [2, 3, 7, 64] {
        let cells = sweep(&families, &profile(), &engines, 42, 2, threads).unwrap();
        assert_eq!(cells, reference, "threads = {threads}");
    }
}

#[test]
fn aggregated_table_and_csv_are_thread_count_independent() {
    let a = sweep_catalog(&profile(), 7, 2, 1).unwrap();
    let b = sweep_catalog(&profile(), 7, 2, 6).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.render(), b.render());
    // The table covers the full (family × engine) matrix.
    assert_eq!(a.rows.len(), registry().len() * 4);
}

#[test]
fn sweep_cells_aggregate_consistently() {
    let families = registry();
    let engines = [Engine::Pd];
    let cells = sweep(&families, &profile(), &engines, 3, 3, 2).unwrap();
    let table = aggregate(&cells);
    for row in &table.rows {
        let group: Vec<f64> = cells
            .iter()
            .filter(|c| c.family == row.family && c.engine == row.engine)
            .map(|c| c.report.total_cost)
            .collect();
        assert_eq!(group.len(), row.cost.n);
        let mean = group.iter().sum::<f64>() / group.len() as f64;
        assert!((mean - row.cost.mean).abs() < 1e-12 * (1.0 + mean));
    }
}
