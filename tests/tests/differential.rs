//! Differential testing: the indexed PD serve path vs the retained
//! linear-scan reference engine.
//!
//! `omfl_core::pd::PdOmflp` rebuilt its hot path on the incremental index
//! layer (`omfl_core::index`): nearest-open-facility caches instead of
//! per-request facility scans, and location-bucketed cap accumulators
//! instead of full history walks on every opening. The claim is not
//! "approximately the same algorithm" but **bit-for-bit the same process**:
//! every `ServeOutcome`, every frozen dual, every cap and every cell of the
//! bid matrices must be identical to `omfl_core::naive::NaivePd` (the
//! pre-index implementation, frozen under the `naive-ref` feature).
//!
//! These tests drive both engines over the entire scenario catalog — every
//! family in `catalog::registry()` across several seeds and profile shapes,
//! plus proptest-driven random shapes — and compare with `to_bits`, not
//! tolerances.

use omfl_commodity::cost::{CostModel, FacilityCostFn};
use omfl_commodity::CommoditySet;
use omfl_core::algorithm::OnlineAlgorithm;
use omfl_core::naive::NaivePd;
use omfl_core::pd::PdOmflp;
use omfl_core::request::Request;
use omfl_core::CoreError;
use omfl_metric::line::LineMetric;
use omfl_metric::PointId;
use omfl_workload::catalog::{registry, CatalogProfile, Family};
use omfl_workload::Scenario;
use proptest::prelude::*;
use std::sync::Arc;

/// Serves `scenario` with both engines, asserting bit-identical behavior at
/// every arrival and over the whole frozen dual state at the end.
fn assert_bit_identical(scenario: &Scenario, label: &str) {
    let inst = scenario.instance();
    let mut fast = PdOmflp::new(inst);
    let mut slow = NaivePd::new(inst);

    for (step, r) in scenario.requests.iter().enumerate() {
        let a = fast
            .serve(r)
            .unwrap_or_else(|e| panic!("{label}: indexed serve failed: {e}"));
        let b = slow
            .serve(r)
            .unwrap_or_else(|e| panic!("{label}: naive serve failed: {e}"));
        // ServeOutcome's PartialEq compares exact f64 values.
        assert_eq!(a, b, "{label}: outcome diverged at arrival {step}");
        assert_eq!(
            fast.dual_sum().to_bits(),
            slow.dual_sum().to_bits(),
            "{label}: dual sum diverged at arrival {step}"
        );
    }

    // Solutions: same facilities (location, configuration, cost, opening
    // time) and the same cost accounting, bitwise.
    let (fs, ns) = (fast.solution(), slow.solution());
    assert_eq!(fs.facilities().len(), ns.facilities().len(), "{label}");
    for (ff, nf) in fs.facilities().iter().zip(ns.facilities()) {
        assert_eq!(ff.location, nf.location, "{label}");
        assert_eq!(ff.config, nf.config, "{label}");
        assert_eq!(ff.cost.to_bits(), nf.cost.to_bits(), "{label}");
        assert_eq!(ff.opened_at, nf.opened_at, "{label}");
    }
    assert_eq!(
        fs.total_cost().to_bits(),
        ns.total_cost().to_bits(),
        "{label}: total cost"
    );
    assert_eq!(
        fs.construction_cost().to_bits(),
        ns.construction_cost().to_bits(),
        "{label}: construction cost"
    );
    assert_eq!(
        fs.connection_cost().to_bits(),
        ns.connection_cost().to_bits(),
        "{label}: connection cost"
    );

    // Frozen dual state: duals, caps and the joint caps per past request.
    assert_eq!(fast.past_requests().len(), slow.past_requests().len());
    for (i, (fp, np)) in fast
        .past_requests()
        .iter()
        .zip(slow.past_requests())
        .enumerate()
    {
        assert_eq!(fp.location, np.location, "{label}: request {i}");
        assert_eq!(fp.commodities, np.commodities, "{label}: request {i}");
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&fp.duals), bits(&np.duals), "{label}: duals of {i}");
        assert_eq!(bits(&fp.caps), bits(&np.caps), "{label}: caps of {i}");
        assert_eq!(
            fp.cap_total.to_bits(),
            np.cap_total.to_bits(),
            "{label}: joint cap of {i}"
        );
    }

    // Bid matrices, cell by cell across the layout transpose (indexed B is
    // commodity-major `e·m + p`; the reference kept point-major `p·s + e`).
    let (m, s) = (inst.num_points(), inst.num_commodities());
    let (fb, fbh) = fast.bids();
    let (nb, nbh) = slow.bids();
    for p in 0..m {
        for e in 0..s {
            assert_eq!(
                fb[e * m + p].to_bits(),
                nb[p * s + e].to_bits(),
                "{label}: B[{p}][{e}]"
            );
        }
    }
    for p in 0..m {
        assert_eq!(fbh[p].to_bits(), nbh[p].to_bits(), "{label}: B-hat[{p}]");
    }
}

#[test]
fn indexed_pd_matches_naive_on_every_catalog_family() {
    let profile = CatalogProfile {
        points: 12,
        services: 9,
        requests: 60,
    };
    for fam in registry() {
        for seed in [1u64, 7, 2020] {
            let sc = fam.build(&profile, seed).expect(fam.name);
            assert_bit_identical(&sc, &format!("{} (seed {seed})", fam.name));
        }
    }
}

#[test]
fn indexed_pd_matches_naive_on_long_streams_with_openings() {
    // Longer streams exercise the cap-shrink passes hard: late openings
    // must shrink exactly the same caps in exactly the same order.
    let profile = CatalogProfile {
        points: 16,
        services: 12,
        requests: 220,
    };
    for fam in registry().into_iter().take(4) {
        let sc = fam.build(&profile, 99).expect(fam.name);
        assert_bit_identical(&sc, &format!("{} (long)", fam.name));
    }
}

#[test]
fn indexed_pd_matches_naive_beyond_the_dense_distance_cap_shape() {
    // A skinny profile (more points than the families usually get) checks
    // the row-slice arithmetic near the profile edges; the dense-cache
    // fallback itself is value-identical by construction.
    let profile = CatalogProfile {
        points: 40,
        services: 4,
        requests: 80,
    };
    for fam in registry() {
        let sc = fam.build(&profile, 5).expect(fam.name);
        assert_bit_identical(&sc, &format!("{} (skinny)", fam.name));
    }
}

/// A degenerate metric where *every* distance is zero: all |M| locations
/// key identically in the t3/t4 scans (facility costs are
/// location-independent and the bid rows stay uniform), so every argmin is
/// a maximal tie and the strict-`<` first-winner rule is all that
/// distinguishes locations. The opening-target memo must reproduce that
/// winner exactly.
fn tie_storm(p: &CatalogProfile, seed: u64) -> Result<Scenario, CoreError> {
    let s = p.services.max(4);
    let m = p.points.max(6);
    let metric = Arc::new(LineMetric::new(vec![2.5; m]).expect("coincident line"));
    let cost = CostModel::power(s, 1.0, 1.5);
    let universe = cost.universe();
    let mut state = seed | 1;
    let mut requests = Vec::with_capacity(p.requests);
    for i in 0..p.requests {
        // Simple xorshift so streams vary by seed without pulling rand in.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let loc = PointId((state % m as u64) as u32);
        let a = (i as u16) % s;
        let b = (state >> 32) as u16 % s;
        requests.push(Request::new(
            loc,
            CommoditySet::from_ids(universe, &[a, b]).map_err(CoreError::Commodity)?,
        ));
    }
    Scenario::new(format!("tie-storm(|M|={m})"), metric, cost, requests)
}

/// Repeated budget bumps on the *same* locations: a tight two-point cluster
/// plus a far outpost. The stream hammers the cluster with the same bundle,
/// so every freeze reinvests bids into the identical small location set
/// over and over (the moved-log repair path), with periodic far requests
/// that trigger openings (the epoch-invalidation path).
fn bump_hammer(p: &CatalogProfile, seed: u64) -> Result<Scenario, CoreError> {
    let s = p.services.max(4);
    let metric =
        Arc::new(LineMetric::new(vec![0.0, 0.125, 0.25, 40.0, 40.125]).expect("cluster line"));
    let cost = CostModel::power(s, 1.0, 2.0);
    let universe = cost.universe();
    let mut requests = Vec::with_capacity(p.requests);
    for i in 0..p.requests {
        let (loc, ids): (u32, Vec<u16>) = if i % 11 == 10 {
            // Outpost burst: forces openings → cap shrinks → epoch bumps.
            (3 + (i as u32 / 11) % 2, vec![(i as u16) % s])
        } else {
            // Cluster hammer: same bundle, alternating coincident-ish
            // locations — every freeze bumps the same budget cells.
            (
                (i as u32 + seed as u32) % 3,
                vec![0, 1 % s, (seed as u16 + 2) % s],
            )
        };
        requests.push(Request::new(
            PointId(loc),
            CommoditySet::from_ids(universe, &ids).map_err(CoreError::Commodity)?,
        ));
    }
    Scenario::new("bump-hammer(|M|=5)".to_string(), metric, cost, requests)
}

#[test]
fn indexed_pd_matches_naive_under_tie_storms_and_budget_hammering() {
    let profile = CatalogProfile {
        points: 14,
        services: 10,
        requests: 160,
    };
    for fam in [
        Family::new("tie-storm", "max-tie argmins", tie_storm),
        Family::new(
            "bump-hammer",
            "repeated same-location budget bumps",
            bump_hammer,
        ),
    ] {
        for seed in [2u64, 13, 77] {
            let sc = fam.build(&profile, seed).expect(fam.name);
            assert_bit_identical(&sc, &format!("{} (seed {seed})", fam.name));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random (family, seed, shape) triples: the indexed and reference
    /// engines must be bit-identical everywhere, not just on hand-picked
    /// profiles.
    #[test]
    fn indexed_pd_matches_naive_on_random_catalog_draws(
        family_idx in 0usize..64,
        seed in 0u64..10_000,
        points in 4usize..20,
        services in 2u16..14,
        requests in 5usize..70,
    ) {
        let families = registry();
        let fam = families[family_idx % families.len()];
        let profile = CatalogProfile { points, services, requests };
        let sc = fam.build(&profile, seed).unwrap();
        assert_bit_identical(&sc, &format!("{} (prop seed {seed})", fam.name));
    }
}
