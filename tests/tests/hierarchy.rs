//! End-to-end tests with the Svitkina–Tardos-style hierarchical cost model
//! (related work §1.2): it is subadditive and monotone but violates
//! Condition 1, making it the natural stress test for the §5
//! heavy-commodity machinery.

use omfl_commodity::cost::CostModel;
use omfl_commodity::CommoditySet;
use omfl_core::algorithm::{run_online_verified, OnlineAlgorithm};
use omfl_core::heavy::{detect_heavy, HeavyExclusion, HeavyInstances, SharedMetric};
use omfl_core::instance::Instance;
use omfl_core::pd::PdOmflp;
use omfl_core::randalg::RandOmflp;
use omfl_core::request::Request;
use omfl_metric::line::LineMetric;
use omfl_metric::{Metric, PointId};
use std::sync::Arc;

/// 6 leaves; leaf 5 hides behind a private edge of weight 40.
fn lopsided_tree_cost() -> CostModel {
    CostModel::hierarchy(
        6,
        vec![
            Some((6, 1.0)),  // 0 ─┐
            Some((6, 1.0)),  // 1  ├─ cluster a
            Some((6, 1.0)),  // 2 ─┘
            Some((7, 1.5)),  // 3 ─┐
            Some((7, 1.5)),  // 4 ─┴─ cluster b
            Some((8, 40.0)), // 5: the heavy leaf
            Some((8, 2.0)),  // a -> root
            Some((8, 2.0)),  // b -> root
            None,            // root
        ],
    )
    .unwrap()
}

fn requests(inst: &Instance) -> Vec<Request> {
    let u = inst.universe();
    (0..40u32)
        .map(|i| {
            let ids: &[u16] = match i % 5 {
                0 => &[0, 1],
                1 => &[1, 2],
                2 => &[3, 4],
                3 => &[0, 3],
                _ => &[5], // occasional heavy request
            };
            Request::new(PointId(i % 4), CommoditySet::from_ids(u, ids).unwrap())
        })
        .collect()
}

#[test]
fn pd_and_rand_remain_feasible_under_hierarchy_costs() {
    let metric: Arc<dyn Metric> = Arc::new(LineMetric::new(vec![0.0, 1.0, 2.0, 8.0]).unwrap());
    let inst = Instance::with_cost_fn(
        Box::new(SharedMetric(metric)),
        Box::new(lopsided_tree_cost()),
    )
    .unwrap();
    let reqs = requests(&inst);

    let mut pd = PdOmflp::new(&inst);
    let pd_cost = run_online_verified(&mut pd, &inst, &reqs).unwrap();
    assert!(pd_cost > 0.0);
    // Corollary 8's accounting holds regardless of Condition 1 (it only
    // needs the constraint mechanics, not the scaling lemma).
    assert!(pd_cost <= 3.0 * pd.dual_sum() + 1e-6);

    let mut rn = RandOmflp::new(&inst, 5);
    let rn_cost = run_online_verified(&mut rn, &inst, &reqs).unwrap();
    assert!(rn_cost > 0.0);
}

#[test]
fn detect_heavy_finds_the_lopsided_leaf() {
    let metric: Arc<dyn Metric> = Arc::new(LineMetric::single_point());
    let inst = Instance::with_cost_fn(
        Box::new(SharedMetric(metric)),
        Box::new(lopsided_tree_cost()),
    )
    .unwrap();
    let heavy = detect_heavy(&inst, 4.0);
    assert_eq!(
        heavy,
        vec![omfl_commodity::CommodityId(5)],
        "the private-edge leaf must be flagged heavy"
    );
}

#[test]
fn heavy_exclusion_beats_plain_pd_on_hierarchy_costs() {
    let metric: Arc<dyn Metric> = Arc::new(LineMetric::new(vec![0.0, 1.0, 2.0, 8.0]).unwrap());
    let cost = lopsided_tree_cost();
    let parts = HeavyInstances::build(
        Arc::clone(&metric),
        cost.clone(),
        &[omfl_commodity::CommodityId(5)],
    )
    .unwrap();
    let reqs = requests(&parts.original);

    let mut plain = PdOmflp::new(&parts.original);
    let plain_cost = run_online_verified(&mut plain, &parts.original, &reqs).unwrap();

    let mut excl = HeavyExclusion::new(&parts);
    let excl_cost = run_online_verified(&mut excl, &parts.original, &reqs).unwrap();

    assert!(
        excl_cost <= plain_cost * 1.05,
        "exclusion ({excl_cost}) should not lose to plain PD ({plain_cost}) when a heavy \
         leaf poisons every large facility"
    );
    // And the wrapper must never bundle the heavy commodity with others.
    for f in excl.solution().facilities() {
        if f.config.contains(omfl_commodity::CommodityId(5)) {
            assert_eq!(f.config.len(), 1);
        }
    }
}
