//! Bound-curve checks at the index refresh boundary.
//!
//! The incremental index layer refreshes its nearest-facility caches and
//! cap buckets exactly when a facility opens. An off-by-one there (caps
//! shrunk too early/late, a stale nearest distance) would not necessarily
//! crash — it would silently bend the dual accounting the paper's
//! guarantees rest on. So, for every catalog family, these tests re-assert
//! the two theorem-backed inequalities **on the exact arrivals where the
//! caches were refreshed** (i.e. where `ServeOutcome::opened` is
//! non-empty):
//!
//! * **Corollary 8**: `cost ≤ 3 · Σ_r Σ_e a_{re}` — the primal-dual charging
//!   argument, sensitive to bid reinvestment bookkeeping;
//! * **Corollary 17**: the scaled dual sum `γ·Σa` (γ = 1/(5·√|S|·H_n)) is a
//!   lower bound on OPT, hence at most the algorithm's own cost; combining
//!   both, `cost ≤ 15·√|S|·H_n · (scaled dual LB)` must hold with *no*
//!   slack constant — it is an identity of the two corollaries, checked
//!   here against `omfl_core::bounds::sqrt_s` and `harmonic`.
//!
//! On top of the bound curves, this suite locksteps the relabeled,
//! radius-bounded opening-target prune against fresh full scans bitwise at
//! every arrival across the whole catalog (including the cold-query
//! adversary and past the dense distance cap), and drives *random*
//! relabelings through whole engine runs — the index's block layout must
//! never leak into engine-visible state.

use omfl_core::algorithm::OnlineAlgorithm;
use omfl_core::pd::PdOmflp;
use omfl_core::{bounds, harmonic};
use omfl_workload::catalog::{by_name, registry, CatalogProfile};
use proptest::prelude::*;

fn profile() -> CatalogProfile {
    CatalogProfile {
        points: 12,
        services: 9,
        requests: 70,
    }
}

/// Locksteps the incremental engine against a scan-mode engine over one
/// scenario: identical outcomes and, at every non-fast-path arrival, the
/// memo-repaired t3/t4 targets must equal the fresh-scan argmins **bit for
/// bit** — value bits and winning location both.
fn assert_targets_lockstep(sc: &omfl_workload::Scenario, label: &str) -> (u64, u64) {
    let inst = sc.instance();
    let mut inc = PdOmflp::new(inst);
    let mut scan = PdOmflp::with_full_scans(inst);
    for (step, r) in sc.requests.iter().enumerate() {
        let a = inc
            .serve(r)
            .unwrap_or_else(|e| panic!("{label}: incremental: {e}"));
        let b = scan
            .serve(r)
            .unwrap_or_else(|e| panic!("{label}: scan: {e}"));
        assert_eq!(a, b, "{label}: outcome diverged at arrival {step}");
        match (inc.last_opening_targets(), scan.last_opening_targets()) {
            (None, None) => {} // both took the zero-distance large fast path
            (Some((t3i, t4i)), Some((t3s, t4s))) => {
                assert_eq!(t3i.len(), t3s.len(), "{label}: arrival {step}");
                for (slot, (ti, ts)) in t3i.iter().zip(t3s).enumerate() {
                    assert_eq!(
                        (ti.0.to_bits(), ti.1),
                        (ts.0.to_bits(), ts.1),
                        "{label}: t3 slot {slot} diverged at arrival {step} \
                         (memo {ti:?} vs fresh scan {ts:?})"
                    );
                }
                assert_eq!(
                    (t4i.0.to_bits(), t4i.1),
                    (t4s.0.to_bits(), t4s.1),
                    "{label}: t4 diverged at arrival {step}"
                );
            }
            (i, s) => panic!("{label}: fast-path divergence at arrival {step}: {i:?} vs {s:?}"),
        }
    }
    inc.opening_target_stats()
        .expect("incremental engine exposes stats")
}

#[test]
fn incremental_targets_equal_fresh_scans_at_every_arrival() {
    // Every catalog family — including the large-metric ones, which at this
    // profile cross DENSE_DISTANCE_CAP and run the blocked row cache.
    let mut total_skipped = 0;
    for fam in registry() {
        let sc = fam.build(&profile(), 29).expect(fam.name);
        let (skipped, scanned) = assert_targets_lockstep(&sc, fam.name);
        assert!(
            skipped + scanned > 0,
            "{}: the opening-target index was never queried",
            fam.name
        );
        total_skipped += skipped;
    }
    assert!(
        total_skipped > 0,
        "the block prune never engaged — the incremental path is inert"
    );
}

#[test]
fn incremental_targets_lockstep_beyond_the_dense_cap() {
    // Push the large families — including the cold-query adversary whose
    // ids are scattered against spatial structure — past DENSE_DISTANCE_CAP
    // (1280–2560 points) so the lockstep covers the blocked-row-cache
    // backend and the relabeled radius-bounded prune together.
    let profile = CatalogProfile {
        points: 40,
        services: 8,
        requests: 120,
    };
    for name in [
        "zipf-services-large",
        "euclid-grid-large",
        "cold-scatter-large",
    ] {
        let sc = by_name(name).unwrap().build(&profile, 5).expect(name);
        assert!(
            sc.instance().num_points() > omfl_core::pd::DENSE_DISTANCE_CAP,
            "{name}: profile failed to cross the dense cap"
        );
        let (skipped, _) = assert_targets_lockstep(&sc, name);
        assert!(
            skipped > 0,
            "{name}: the prune never skipped a block on a hotspot workload"
        );
    }
}

/// The cold-query family is built to defeat the *distance-free* part of
/// the bound (ids scattered, queries hopping between far regions), so a
/// healthy skip rate here can only come from the relabeled radius bounds.
#[test]
fn cold_query_family_is_pruned_by_radius_bounds_alone() {
    let profile = CatalogProfile {
        points: 48, // × 32 scale → 1536 points, past the dense cap
        services: 8,
        requests: 256,
    };
    let sc = by_name("cold-scatter-large")
        .unwrap()
        .build(&profile, 17)
        .expect("cold-scatter-large");
    let (skipped, scanned) = assert_targets_lockstep(&sc, "cold-scatter-large");
    let rate = skipped as f64 / (skipped + scanned).max(1) as f64;
    assert!(
        rate >= 0.5,
        "cold queries must be pruned by the radius bounds: skip rate {:.1}% \
         (skipped {skipped}, scanned {scanned})",
        100.0 * rate
    );
}

#[test]
fn corollary8_holds_on_every_cache_refresh_arrival() {
    for fam in registry() {
        let sc = fam.build(&profile(), 11).expect(fam.name);
        let inst = sc.instance();
        let mut pd = PdOmflp::new(inst);
        let mut refreshes = 0usize;
        for (step, r) in sc.requests.iter().enumerate() {
            let out = pd.serve(r).expect(fam.name);
            if out.opened.is_empty() {
                continue;
            }
            refreshes += 1;
            // The opening just updated the nearest caches and shrank caps;
            // the charging argument must survive the refresh.
            let cost = pd.solution().total_cost();
            let bound = 3.0 * pd.dual_sum();
            assert!(
                cost <= bound + 1e-7 * (1.0 + bound),
                "{}: Corollary 8 violated at refresh arrival {step}: \
                 cost {cost} > 3Σa = {bound}",
                fam.name
            );
        }
        assert!(
            refreshes > 0,
            "{}: no openings — the boundary was never exercised",
            fam.name
        );
        // Openings refresh the index exactly once each.
        assert_eq!(
            pd.facility_index().openings(),
            pd.solution().facilities().len(),
            "{}",
            fam.name
        );
    }
}

#[test]
fn scaled_dual_lower_bound_stays_below_cost_at_refreshes() {
    for fam in registry() {
        let sc = fam.build(&profile(), 23).expect(fam.name);
        let inst = sc.instance();
        let s = inst.num_commodities();
        let mut pd = PdOmflp::new(inst);
        for (step, r) in sc.requests.iter().enumerate() {
            let out = pd.serve(r).expect(fam.name);
            if out.opened.is_empty() {
                continue;
            }
            let cost = pd.solution().total_cost();
            let lb = pd.scaled_dual_lower_bound();
            let n = pd.past_requests().len();
            // γΣa ≤ OPT ≤ ALG's own (feasible) cost.
            assert!(
                lb <= cost + 1e-7 * (1.0 + cost),
                "{}: dual LB {lb} exceeds cost {cost} at refresh arrival {step}",
                fam.name
            );
            assert!(lb > 0.0, "{}: dual LB vanished after openings", fam.name);
            // The corollary-composition identity, in terms of the bounds
            // module's curve pieces: cost ≤ 3Σa = 15·√S·H_n·(γΣa).
            let curve = 15.0 * bounds::sqrt_s(s) * harmonic(n);
            assert!(
                cost <= curve * lb + 1e-6 * (1.0 + curve * lb),
                "{}: cost {cost} > 15·√S·H_n·LB = {} at refresh arrival {step}",
                fam.name,
                curve * lb
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The relabeling lives entirely inside the opening-target index, so an
    /// engine running under an ARBITRARY permutation of the block layout
    /// must be indistinguishable — outcome by outcome, bit by bit — from
    /// the stock engine (whose own layout is the metric's coherent order).
    /// This is the structural guarantee behind "relabeling never leaks":
    /// not one blessed order, but all of them.
    #[test]
    fn random_relabelings_never_change_engine_outcomes(
        family_idx in 0usize..64,
        seed in 0u64..10_000,
        perm_seed in 0u64..10_000,
        points in 4usize..20,
        services in 2u16..10,
        requests in 5usize..60,
    ) {
        let families = registry();
        let fam = families[family_idx % families.len()];
        let profile = CatalogProfile { points, services, requests };
        let sc = fam.build(&profile, seed).unwrap();
        let inst = sc.instance();
        let m = inst.num_points();
        // Deterministic Fisher–Yates driven by perm_seed.
        let mut order: Vec<u32> = (0..m as u32).collect();
        let mut st = perm_seed | 1;
        for i in (1..m).rev() {
            st ^= st << 13;
            st ^= st >> 7;
            st ^= st << 17;
            let j = (st % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let mut relabeled = PdOmflp::with_target_order(inst, order);
        let mut reference = PdOmflp::new(inst);
        for (step, r) in sc.requests.iter().enumerate() {
            let a = relabeled.serve(r).unwrap();
            let b = reference.serve(r).unwrap();
            assert_eq!(a, b, "{}: outcome diverged at arrival {step}", fam.name);
        }
        assert_eq!(
            relabeled.dual_sum().to_bits(),
            reference.dual_sum().to_bits(),
            "{}: dual sums diverged", fam.name
        );
        assert_eq!(
            relabeled.solution().total_cost().to_bits(),
            reference.solution().total_cost().to_bits(),
            "{}: costs diverged", fam.name
        );
    }
}

#[test]
fn refresh_arrival_state_matches_a_fresh_replay() {
    // The cache-refresh arrival must leave the engine in a state
    // indistinguishable from replaying the prefix from scratch — i.e. the
    // incremental maintenance carries no hidden history dependence.
    let fam = registry()
        .into_iter()
        .find(|f| f.name == "zipf-services")
        .unwrap();
    let sc = fam.build(&profile(), 3).unwrap();
    let inst = sc.instance();
    let mut pd = PdOmflp::new(inst);
    for (step, r) in sc.requests.iter().enumerate() {
        let out = pd.serve(r).unwrap();
        if out.opened.is_empty() || step < 5 {
            continue;
        }
        let mut replay = PdOmflp::new(inst);
        for rr in &sc.requests[..=step] {
            replay.serve(rr).unwrap();
        }
        assert_eq!(
            pd.dual_sum().to_bits(),
            replay.dual_sum().to_bits(),
            "prefix replay diverged at {step}"
        );
        assert_eq!(
            pd.solution().total_cost().to_bits(),
            replay.solution().total_cost().to_bits()
        );
        break; // one deep replay per run keeps the test fast
    }
}
