//! Bound-curve checks at the index refresh boundary.
//!
//! The incremental index layer refreshes its nearest-facility caches and
//! cap buckets exactly when a facility opens. An off-by-one there (caps
//! shrunk too early/late, a stale nearest distance) would not necessarily
//! crash — it would silently bend the dual accounting the paper's
//! guarantees rest on. So, for every catalog family, these tests re-assert
//! the two theorem-backed inequalities **on the exact arrivals where the
//! caches were refreshed** (i.e. where `ServeOutcome::opened` is
//! non-empty):
//!
//! * **Corollary 8**: `cost ≤ 3 · Σ_r Σ_e a_{re}` — the primal-dual charging
//!   argument, sensitive to bid reinvestment bookkeeping;
//! * **Corollary 17**: the scaled dual sum `γ·Σa` (γ = 1/(5·√|S|·H_n)) is a
//!   lower bound on OPT, hence at most the algorithm's own cost; combining
//!   both, `cost ≤ 15·√|S|·H_n · (scaled dual LB)` must hold with *no*
//!   slack constant — it is an identity of the two corollaries, checked
//!   here against `omfl_core::bounds::sqrt_s` and `harmonic`.

use omfl_core::algorithm::OnlineAlgorithm;
use omfl_core::pd::PdOmflp;
use omfl_core::{bounds, harmonic};
use omfl_workload::catalog::{by_name, registry, CatalogProfile};

fn profile() -> CatalogProfile {
    CatalogProfile {
        points: 12,
        services: 9,
        requests: 70,
    }
}

/// Locksteps the incremental engine against a scan-mode engine over one
/// scenario: identical outcomes and, at every non-fast-path arrival, the
/// memo-repaired t3/t4 targets must equal the fresh-scan argmins **bit for
/// bit** — value bits and winning location both.
fn assert_targets_lockstep(sc: &omfl_workload::Scenario, label: &str) -> (u64, u64) {
    let inst = sc.instance();
    let mut inc = PdOmflp::new(inst);
    let mut scan = PdOmflp::with_full_scans(inst);
    for (step, r) in sc.requests.iter().enumerate() {
        let a = inc
            .serve(r)
            .unwrap_or_else(|e| panic!("{label}: incremental: {e}"));
        let b = scan
            .serve(r)
            .unwrap_or_else(|e| panic!("{label}: scan: {e}"));
        assert_eq!(a, b, "{label}: outcome diverged at arrival {step}");
        match (inc.last_opening_targets(), scan.last_opening_targets()) {
            (None, None) => {} // both took the zero-distance large fast path
            (Some((t3i, t4i)), Some((t3s, t4s))) => {
                assert_eq!(t3i.len(), t3s.len(), "{label}: arrival {step}");
                for (slot, (ti, ts)) in t3i.iter().zip(t3s).enumerate() {
                    assert_eq!(
                        (ti.0.to_bits(), ti.1),
                        (ts.0.to_bits(), ts.1),
                        "{label}: t3 slot {slot} diverged at arrival {step} \
                         (memo {ti:?} vs fresh scan {ts:?})"
                    );
                }
                assert_eq!(
                    (t4i.0.to_bits(), t4i.1),
                    (t4s.0.to_bits(), t4s.1),
                    "{label}: t4 diverged at arrival {step}"
                );
            }
            (i, s) => panic!("{label}: fast-path divergence at arrival {step}: {i:?} vs {s:?}"),
        }
    }
    inc.opening_target_stats()
        .expect("incremental engine exposes stats")
}

#[test]
fn incremental_targets_equal_fresh_scans_at_every_arrival() {
    // Every catalog family — including the large-metric ones, which at this
    // profile cross DENSE_DISTANCE_CAP and run the blocked row cache.
    let mut total_skipped = 0;
    for fam in registry() {
        let sc = fam.build(&profile(), 29).expect(fam.name);
        let (skipped, scanned) = assert_targets_lockstep(&sc, fam.name);
        assert!(
            skipped + scanned > 0,
            "{}: the opening-target index was never queried",
            fam.name
        );
        total_skipped += skipped;
    }
    assert!(
        total_skipped > 0,
        "the block prune never engaged — the incremental path is inert"
    );
}

#[test]
fn incremental_targets_lockstep_beyond_the_dense_cap() {
    // Push the large families past DENSE_DISTANCE_CAP (1280 and 2560
    // points) so the lockstep covers the blocked-row-cache backend too.
    let profile = CatalogProfile {
        points: 40,
        services: 8,
        requests: 120,
    };
    for name in ["zipf-services-large", "euclid-grid-large"] {
        let sc = by_name(name).unwrap().build(&profile, 5).expect(name);
        assert!(
            sc.instance().num_points() > omfl_core::pd::DENSE_DISTANCE_CAP,
            "{name}: profile failed to cross the dense cap"
        );
        let (skipped, _) = assert_targets_lockstep(&sc, name);
        assert!(
            skipped > 0,
            "{name}: the prune never skipped a block on a hotspot workload"
        );
    }
}

#[test]
fn corollary8_holds_on_every_cache_refresh_arrival() {
    for fam in registry() {
        let sc = fam.build(&profile(), 11).expect(fam.name);
        let inst = sc.instance();
        let mut pd = PdOmflp::new(inst);
        let mut refreshes = 0usize;
        for (step, r) in sc.requests.iter().enumerate() {
            let out = pd.serve(r).expect(fam.name);
            if out.opened.is_empty() {
                continue;
            }
            refreshes += 1;
            // The opening just updated the nearest caches and shrank caps;
            // the charging argument must survive the refresh.
            let cost = pd.solution().total_cost();
            let bound = 3.0 * pd.dual_sum();
            assert!(
                cost <= bound + 1e-7 * (1.0 + bound),
                "{}: Corollary 8 violated at refresh arrival {step}: \
                 cost {cost} > 3Σa = {bound}",
                fam.name
            );
        }
        assert!(
            refreshes > 0,
            "{}: no openings — the boundary was never exercised",
            fam.name
        );
        // Openings refresh the index exactly once each.
        assert_eq!(
            pd.facility_index().openings(),
            pd.solution().facilities().len(),
            "{}",
            fam.name
        );
    }
}

#[test]
fn scaled_dual_lower_bound_stays_below_cost_at_refreshes() {
    for fam in registry() {
        let sc = fam.build(&profile(), 23).expect(fam.name);
        let inst = sc.instance();
        let s = inst.num_commodities();
        let mut pd = PdOmflp::new(inst);
        for (step, r) in sc.requests.iter().enumerate() {
            let out = pd.serve(r).expect(fam.name);
            if out.opened.is_empty() {
                continue;
            }
            let cost = pd.solution().total_cost();
            let lb = pd.scaled_dual_lower_bound();
            let n = pd.past_requests().len();
            // γΣa ≤ OPT ≤ ALG's own (feasible) cost.
            assert!(
                lb <= cost + 1e-7 * (1.0 + cost),
                "{}: dual LB {lb} exceeds cost {cost} at refresh arrival {step}",
                fam.name
            );
            assert!(lb > 0.0, "{}: dual LB vanished after openings", fam.name);
            // The corollary-composition identity, in terms of the bounds
            // module's curve pieces: cost ≤ 3Σa = 15·√S·H_n·(γΣa).
            let curve = 15.0 * bounds::sqrt_s(s) * harmonic(n);
            assert!(
                cost <= curve * lb + 1e-6 * (1.0 + curve * lb),
                "{}: cost {cost} > 15·√S·H_n·LB = {} at refresh arrival {step}",
                fam.name,
                curve * lb
            );
        }
    }
}

#[test]
fn refresh_arrival_state_matches_a_fresh_replay() {
    // The cache-refresh arrival must leave the engine in a state
    // indistinguishable from replaying the prefix from scratch — i.e. the
    // incremental maintenance carries no hidden history dependence.
    let fam = registry()
        .into_iter()
        .find(|f| f.name == "zipf-services")
        .unwrap();
    let sc = fam.build(&profile(), 3).unwrap();
    let inst = sc.instance();
    let mut pd = PdOmflp::new(inst);
    for (step, r) in sc.requests.iter().enumerate() {
        let out = pd.serve(r).unwrap();
        if out.opened.is_empty() || step < 5 {
            continue;
        }
        let mut replay = PdOmflp::new(inst);
        for rr in &sc.requests[..=step] {
            replay.serve(rr).unwrap();
        }
        assert_eq!(
            pd.dual_sum().to_bits(),
            replay.dual_sum().to_bits(),
            "prefix replay diverged at {step}"
        );
        assert_eq!(
            pd.solution().total_cost().to_bits(),
            replay.solution().total_cost().to_bits()
        );
        break; // one deep replay per run keeps the test fast
    }
}
