//! Optimality relations: exact OPT vs bounds vs online costs, on a family
//! of randomized tiny instances where the exact solver is feasible.

use omfl_baselines::offline::{
    serve_alone_lower_bound, DualLowerBound, ExactSolver, GreedyOffline, LocalSearch, OptBracket,
};
use omfl_commodity::cost::CostModel;
use omfl_commodity::CommoditySet;
use omfl_core::algorithm::run_online_verified;
use omfl_core::instance::Instance;
use omfl_core::pd::PdOmflp;
use omfl_core::randalg::RandOmflp;
use omfl_core::request::Request;
use omfl_core::CoreError;
use omfl_metric::line::LineMetric;
use omfl_metric::PointId;
use omfl_workload::catalog::{by_name, CatalogProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tiny_instance(seed: u64) -> (Instance, Vec<Request>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = rng.gen_range(2..=4usize);
    let positions: Vec<f64> = (0..m).map(|_| rng.gen::<f64>() * 6.0).collect();
    let s = rng.gen_range(2..=3u16);
    let x = [0.5, 1.0, 1.5][rng.gen_range(0..3usize)];
    let inst = Instance::new(
        Box::new(LineMetric::new(positions).unwrap()),
        s,
        CostModel::power(s, x, 1.0 + rng.gen::<f64>() * 2.0),
    )
    .unwrap();
    let u = inst.universe();
    let n = rng.gen_range(3..=7usize);
    let reqs: Vec<Request> = (0..n)
        .map(|_| {
            let loc = rng.gen_range(0..m as u32);
            let k = rng.gen_range(1..=s);
            let mut set = CommoditySet::empty(u);
            while set.len() < k as usize {
                set.insert(omfl_commodity::CommodityId(rng.gen_range(0..s)))
                    .unwrap();
            }
            Request::new(PointId(loc), set)
        })
        .collect();
    (inst, reqs)
}

#[test]
fn exact_opt_sits_inside_every_bound_pair() {
    for seed in 0..12u64 {
        let (inst, reqs) = tiny_instance(seed);
        let opt = ExactSolver::new().solve(&inst, &reqs).unwrap().total_cost();

        let dual = DualLowerBound::compute(&inst, &reqs).unwrap();
        assert!(
            dual <= opt + 1e-6,
            "seed {seed}: dual LB {dual} exceeds OPT {opt}"
        );
        let alone = serve_alone_lower_bound(&inst, &reqs).unwrap();
        assert!(
            alone <= opt + 1e-6,
            "seed {seed}: serve-alone LB {alone} exceeds OPT {opt}"
        );

        let greedy = GreedyOffline::new().solve(&inst, &reqs).unwrap();
        assert!(
            greedy.total_cost() >= opt - 1e-6,
            "seed {seed}: greedy below OPT"
        );
        let ls = LocalSearch::new().improve(&inst, &greedy, &reqs).unwrap();
        assert!(ls.total_cost() >= opt - 1e-6, "seed {seed}: LS below OPT");
        assert!(
            ls.total_cost() <= greedy.total_cost() + 1e-9,
            "seed {seed}: LS worse than its start"
        );
    }
}

#[test]
fn online_algorithms_never_beat_exact_opt() {
    for seed in 20..30u64 {
        let (inst, reqs) = tiny_instance(seed);
        let opt = ExactSolver::new().solve(&inst, &reqs).unwrap().total_cost();

        let mut pd = PdOmflp::new(&inst);
        let pd_cost = run_online_verified(&mut pd, &inst, &reqs).unwrap();
        assert!(
            pd_cost >= opt - 1e-6,
            "seed {seed}: online PD ({pd_cost}) below OPT ({opt})"
        );

        let mut rn = RandOmflp::new(&inst, seed);
        let rn_cost = run_online_verified(&mut rn, &inst, &reqs).unwrap();
        assert!(
            rn_cost >= opt - 1e-6,
            "seed {seed}: online RAND ({rn_cost}) below OPT ({opt})"
        );
    }
}

#[test]
fn pd_respects_theorem4_bound_with_constant() {
    // Cost ≤ 15·√S·H_n·OPT is the exact statement proven (Theorem 4's
    // constant is 15); verify with the measured OPT.
    for seed in 40..48u64 {
        let (inst, reqs) = tiny_instance(seed);
        let opt = ExactSolver::new().solve(&inst, &reqs).unwrap().total_cost();
        let mut pd = PdOmflp::new(&inst);
        let pd_cost = run_online_verified(&mut pd, &inst, &reqs).unwrap();
        let s = inst.num_commodities() as f64;
        let bound = 15.0 * s.sqrt() * omfl_core::harmonic(reqs.len()) * opt;
        assert!(
            pd_cost <= bound + 1e-6,
            "seed {seed}: PD {pd_cost} exceeds the proven bound {bound}"
        );
    }
}

#[test]
fn corollary8_on_random_tiny_instances() {
    for seed in 60..70u64 {
        let (inst, reqs) = tiny_instance(seed);
        let mut pd = PdOmflp::new(&inst);
        let cost = run_online_verified(&mut pd, &inst, &reqs).unwrap();
        assert!(
            cost <= 3.0 * pd.dual_sum() + 1e-6,
            "seed {seed}: Corollary 8 violated"
        );
    }
}

/// The sharded branch-and-bound frontier is thread-count independent: node
/// counts and optima are bit-identical at 1, 2, 7, and 16 threads on a
/// catalog-derived instance (the CI matrix job re-runs this whole binary
/// under both `OMFL_THREADS` extremes).
#[test]
fn exact_bnb_identical_at_one_two_seven_sixteen_threads() {
    let profile = CatalogProfile {
        points: 40,
        services: 6,
        requests: 48,
    };
    let fam = by_name("zipf-services").expect("family");
    let sc = fam.build(&profile, 404).expect("scenario");
    let reference = ExactSolver::new()
        .solve_bounded(sc.instance(), &sc.requests)
        .expect("solve");
    assert!(
        reference.certified(),
        "reference run must certify (gap {})",
        reference.gap
    );
    for threads in [2usize, 7, 16] {
        let res = ExactSolver::new()
            .with_threads(threads)
            .solve_bounded(sc.instance(), &sc.requests)
            .expect("solve");
        assert_eq!(
            res.nodes_expanded, reference.nodes_expanded,
            "node count diverged at {threads} threads"
        );
        assert_eq!(
            res.upper_bound.to_bits(),
            reference.upper_bound.to_bits(),
            "optimum diverged at {threads} threads"
        );
        assert_eq!(
            res.lower_bound.to_bits(),
            reference.lower_bound.to_bits(),
            "lower bound diverged at {threads} threads"
        );
        assert!(res.certified());
    }
}

/// Regression: a demand beyond the subset-cover DP's 20-commodity limit
/// must surface as a typed `CoreError` from both `ExactSolver::solve` and
/// `OptBracket::compute`, not reach the DP's enforcement assert.
#[test]
fn twenty_one_commodity_demand_is_a_typed_error() {
    let inst = Instance::new(
        Box::new(LineMetric::single_point()),
        21,
        CostModel::power(21, 1.0, 1.0),
    )
    .unwrap();
    let u = inst.universe();
    let ids: Vec<u16> = (0..21).collect();
    let reqs = vec![Request::new(
        PointId(0),
        CommoditySet::from_ids(u, &ids).unwrap(),
    )];

    let solver = ExactSolver {
        max_commodities: 21,
        ..ExactSolver::default()
    };
    match solver.solve(&inst, &reqs) {
        Err(CoreError::BadRequest(msg)) => assert!(msg.contains("21"), "{msg}"),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    match OptBracket::compute(&inst, &reqs) {
        Err(CoreError::BadRequest(msg)) => assert!(msg.contains("21"), "{msg}"),
        other => panic!("expected BadRequest, got {other:?}"),
    }
}
