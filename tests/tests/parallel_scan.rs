//! Pool-invisibility and ingest-soundness locksteps for the PR 6 serve
//! path: sharded within-arrival block scans and kd-tree ball ingest.
//!
//! The worker pool behind the per-arrival t3/t4 scans is an *execution*
//! choice, never an *algorithmic* one: the shard partition is a pure
//! function of the block count (`SCAN_SHARD_BLOCKS`), each shard reports
//! an achieved lexicographic `(value, location)` best, and the merge
//! re-imposes the sequential tie order. So the engine must be bit-for-bit
//! indistinguishable — per-arrival outcomes, dual sums, total costs, and
//! even the skip/scan statistics — at 1, 2, 7, or 16 threads, and under
//! any blocks-per-shard granularity. These tests pin that down across the
//! workload catalog, alongside the structural invariants both ball-ingest
//! paths (kd nearest-neighbor and the frozen windowed baseline) must
//! satisfy: the block partition is a permutation, each block's covering
//! radius is sound, and the recorded min-id matches the members.

use omfl_core::algorithm::OnlineAlgorithm;
use omfl_core::index::OpeningTargetIndex;
use omfl_core::pd::PdOmflp;
use omfl_workload::catalog::{by_name, registry, CatalogProfile};
use omfl_workload::Scenario;
use proptest::prelude::*;

fn small_profile() -> CatalogProfile {
    CatalogProfile {
        points: 14,
        services: 6,
        requests: 60,
    }
}

/// Runs a configured engine against the stock sequential engine over one
/// scenario; everything observable must agree bit for bit. Returns the
/// configured engine's (skipped, scanned) statistics.
fn assert_engine_lockstep(
    sc: &Scenario,
    mut tuned: PdOmflp<'_>,
    label: &str,
) -> Option<(u64, u64)> {
    let inst = sc.instance();
    let mut reference = PdOmflp::new(inst);
    for (step, r) in sc.requests.iter().enumerate() {
        let a = tuned.serve(r).unwrap_or_else(|e| panic!("{label}: {e}"));
        let b = reference
            .serve(r)
            .unwrap_or_else(|e| panic!("{label}: reference: {e}"));
        assert_eq!(a, b, "{label}: outcome diverged at arrival {step}");
    }
    assert_eq!(
        tuned.dual_sum().to_bits(),
        reference.dual_sum().to_bits(),
        "{label}: dual sums diverged"
    );
    assert_eq!(
        tuned.solution().total_cost().to_bits(),
        reference.solution().total_cost().to_bits(),
        "{label}: costs diverged"
    );
    tuned.opening_target_stats()
}

#[test]
fn sharded_scans_are_bit_identical_at_every_thread_count() {
    // The large Euclidean family crosses the dense distance cap and spans
    // 80+ blocks, so small shard sizes genuinely fan each arrival out over
    // many shards. Every (threads, shard_blocks) cell must match the stock
    // engine exactly — and, per shard size, report identical statistics at
    // every thread count (the pool cannot even change what was *attempted*).
    let profile = CatalogProfile {
        points: 40, // × 32 scale → 1280 points
        services: 8,
        requests: 100,
    };
    let sc = by_name("euclid-grid-large")
        .unwrap()
        .build(&profile, 7)
        .expect("euclid-grid-large");
    let inst = sc.instance();
    for shard_blocks in [1usize, 3, 128] {
        let mut stats_per_threads = Vec::new();
        for threads in [1usize, 2, 7, 16] {
            let mut tuned = PdOmflp::new(inst);
            tuned.configure_parallel_scans(threads, shard_blocks);
            let label = format!("euclid-grid-large t={threads} sb={shard_blocks}");
            let stats = assert_engine_lockstep(&sc, tuned, &label).expect("stats");
            stats_per_threads.push((threads, stats));
        }
        let (_, first) = stats_per_threads[0];
        for (threads, stats) in &stats_per_threads {
            assert_eq!(
                *stats, first,
                "skip/scan stats changed with thread count {threads} at \
                 shard_blocks={shard_blocks} — the pool leaked into the scan"
            );
        }
    }
}

#[test]
fn sharded_scans_lockstep_on_the_scattered_families() {
    // The cold-query adversary scatters ids against spatial structure, and
    // zipf-services hammers a hotspot: both push different shard merge
    // orders than the grid family. One aggressive cell each.
    let profile = CatalogProfile {
        points: 40,
        services: 8,
        requests: 80,
    };
    for name in ["cold-scatter-large", "zipf-services-large"] {
        let sc = by_name(name).unwrap().build(&profile, 13).expect(name);
        let mut tuned = PdOmflp::new(sc.instance());
        tuned.configure_parallel_scans(7, 2);
        assert_engine_lockstep(&sc, tuned, name);
    }
}

#[test]
fn reference_layout_engine_is_bit_identical_to_the_current_one() {
    // `with_reference_layout` freezes the PR 5 layout generation (windowed
    // balls, 16-point blocks, no kd, no block-pruned shrink walk). The
    // layout is engine-invisible, so the frozen engine must replay every
    // family bit for bit — this is what makes the `huge` paired bench a
    // fair like-for-like speedup measurement.
    for fam in registry() {
        let sc = fam.build(&small_profile(), 41).expect(fam.name);
        let inst = sc.instance();
        let tuned = PdOmflp::with_reference_layout(inst);
        assert_engine_lockstep(&sc, tuned, fam.name);
    }
}

/// Structural soundness of one block layout: partition is a permutation of
/// the point set, the medoid is a member, the covering radius dominates
/// every member distance, and min_id is the true member minimum.
fn assert_ball_invariants(sc: &Scenario, idx: &OpeningTargetIndex, label: &str) {
    let inst = sc.instance();
    let m = inst.num_points();
    let partition = idx.block_partition();
    let summaries = idx.block_summaries();
    assert_eq!(partition.len(), summaries.len(), "{label}: block count");
    let mut seen = vec![false; m];
    for (bi, (members, &(rep, radius, min_id))) in partition.iter().zip(&summaries).enumerate() {
        assert!(!members.is_empty(), "{label}: empty block {bi}");
        assert!(
            members.contains(&rep),
            "{label}: block {bi} medoid {rep} is not a member"
        );
        let mut max_d: f64 = 0.0;
        let mut min_member = u32::MAX;
        for &p in members {
            assert!(
                !std::mem::replace(&mut seen[p as usize], true),
                "{label}: point {p} appears in two blocks"
            );
            max_d = max_d.max(inst.distance(omfl_metric::PointId(rep), omfl_metric::PointId(p)));
            min_member = min_member.min(p);
        }
        assert!(
            radius >= max_d,
            "{label}: block {bi} radius {radius} < member distance {max_d}"
        );
        assert_eq!(min_id, min_member, "{label}: block {bi} min_id");
    }
    assert!(
        seen.iter().all(|&s| s),
        "{label}: partition is not a permutation"
    );
}

#[test]
fn kd_and_windowed_ball_ingest_both_satisfy_the_block_invariants() {
    // Both ingest paths — the kd nearest-neighbor balls behind the current
    // engine and the frozen 256-point-window baseline — must produce sound
    // layouts on every family that opts into spatial structure. (Scan-mode
    // families produce the identity layout, which is trivially sound and
    // checked too.)
    let profile = CatalogProfile {
        points: 24,
        services: 4,
        requests: 10,
    };
    for fam in registry() {
        let sc = fam.build(&profile, 3).expect(fam.name);
        let inst = sc.instance();
        let m = inst.num_points();
        let s = inst.num_commodities();
        let f_small = vec![1.0; m * s];
        let f_full = vec![2.0; m];
        let kd = OpeningTargetIndex::for_instance(inst, &f_small, &f_full);
        assert_ball_invariants(&sc, &kd, &format!("{} (kd ingest)", fam.name));
        let win = OpeningTargetIndex::for_instance_legacy(inst, &f_small, &f_full);
        assert_ball_invariants(&sc, &win, &format!("{} (windowed ingest)", fam.name));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random (family, seed, threads, shard size) cells: the tuned engine
    /// must be indistinguishable from the stock one. Thread counts beyond
    /// the machine's cores are deliberate — oversubscription is another
    /// thing that must not be observable.
    #[test]
    fn random_scan_configurations_never_change_outcomes(
        family_idx in 0usize..64,
        seed in 0u64..10_000,
        threads in 1usize..9,
        shard_blocks in 1usize..40,
        points in 4usize..18,
        services in 2u16..8,
        requests in 5usize..50,
    ) {
        let families = registry();
        let fam = families[family_idx % families.len()];
        let profile = CatalogProfile { points, services, requests };
        let sc = fam.build(&profile, seed).unwrap();
        let mut tuned = PdOmflp::new(sc.instance());
        tuned.configure_parallel_scans(threads, shard_blocks);
        let label = format!("{} t={threads} sb={shard_blocks}", fam.name);
        assert_engine_lockstep(&sc, tuned, &label);
    }
}
