//! Locksteps for the PR 8 serve path: kd-bounded partial row fills and
//! the sharded, f32-screened freeze walk.
//!
//! From `PARTIAL_ROW_MIN_POINTS` up (forced on here via the
//! `set_partial_row_threshold` hook so CI-sized metrics exercise it) the
//! engine no longer fills a full `|M|`-entry distance row per arrival — it
//! fills only the coverage set `OpeningTargetIndex::query_scan_cover`
//! predicts from the prepared per-block bounds, and reinvests the freeze
//! caps through a sharded walk that screens each block with certified f32
//! brackets before confirming survivors exactly. Both are *execution* choices, never algorithmic
//! ones: every covered entry is the verbatim metric value, the predicted
//! cover is a superset of what the pruned scans can read, the freeze
//! update set is exactly `{p : d < cap}` however it is narrowed, and the
//! shard partition is a pure function of the block count. So the engine
//! must be bit-for-bit indistinguishable — per-arrival outcomes, dual
//! sums, total costs — from the full-row, full-walk reference at 1, 2, 7,
//! or 16 threads, on every family including the id-scattered adversary.

use omfl_core::algorithm::OnlineAlgorithm;
use omfl_core::pd::PdOmflp;
use omfl_workload::catalog::{by_name, CatalogProfile};
use omfl_workload::Scenario;
use proptest::prelude::*;

/// Serves one scenario on both engines in lockstep; everything observable
/// must agree bit for bit.
fn assert_serve_lockstep(
    sc: &Scenario,
    mut tuned: PdOmflp<'_>,
    mut reference: PdOmflp<'_>,
    label: &str,
) {
    for (step, r) in sc.requests.iter().enumerate() {
        let a = tuned.serve(r).unwrap_or_else(|e| panic!("{label}: {e}"));
        let b = reference
            .serve(r)
            .unwrap_or_else(|e| panic!("{label}: reference: {e}"));
        assert_eq!(a, b, "{label}: outcome diverged at arrival {step}");
    }
    assert_eq!(
        tuned.dual_sum().to_bits(),
        reference.dual_sum().to_bits(),
        "{label}: dual sums diverged"
    );
    assert_eq!(
        tuned.solution().total_cost().to_bits(),
        reference.solution().total_cost().to_bits(),
        "{label}: costs diverged"
    );
}

#[test]
fn partial_rows_and_sharded_freeze_lockstep_at_every_thread_count() {
    // euclid-grid-large at points=40 → |M| = 2560: past the dense cap, so
    // the stock engine runs the blocked backend over the radius-bounded
    // layout — partial rows and the sharded screened freeze are live. The
    // full-scan engine fills complete rows and freezes with the serial
    // full walk; both must replay identically at every pool size (the
    // freeze walk shares the scan pool, so the extremes exercise it too).
    let profile = CatalogProfile {
        points: 40,
        services: 8,
        requests: 100,
    };
    let sc = by_name("euclid-grid-large")
        .unwrap()
        .build(&profile, 7)
        .expect("euclid-grid-large");
    let inst = sc.instance();
    for threads in [1usize, 2, 7, 16] {
        let mut tuned = PdOmflp::new(inst);
        tuned.set_partial_row_threshold(0);
        assert!(
            tuned.partial_rows_active(),
            "blocked backend + bounded layout must enable partial rows"
        );
        tuned.configure_parallel_scans(threads, 16);
        let reference = PdOmflp::with_full_scans(inst);
        assert_serve_lockstep(&sc, tuned, reference, &format!("partial t={threads}"));
    }
}

#[test]
fn frozen_reference_path_keeps_full_rows_and_stays_lockstep() {
    // `with_reference_layout` pins the PR 5 serve path: full row fills and
    // the serial freeze, partial rows gated off — that gate is what keeps
    // the `huge` paired bench a like-for-like measurement. It must still
    // replay the current engine bit for bit.
    let profile = CatalogProfile {
        points: 40,
        services: 8,
        requests: 100,
    };
    let sc = by_name("euclid-grid-large")
        .unwrap()
        .build(&profile, 11)
        .expect("euclid-grid-large");
    let inst = sc.instance();
    let mut current = PdOmflp::new(inst);
    current.set_partial_row_threshold(0);
    assert!(current.partial_rows_active());
    let frozen = PdOmflp::with_reference_layout(inst);
    assert!(
        !frozen.partial_rows_active(),
        "the frozen reference path must not take the partial-row fast path"
    );
    assert_serve_lockstep(&sc, frozen, current, "reference-layout");
}

#[test]
fn cold_scatter_adversary_locksteps_and_promotes_partial_rows() {
    // The id-scattered adversary defeats id-order pruning entirely, so its
    // coverage sets are the least block-aligned the catalog produces; its
    // region-hopping queries also open facilities, whose shrink passes
    // read full rows and force the cache's coverage fallback. Lockstep
    // must hold, and the fallback counter must be observable.
    let profile = CatalogProfile {
        points: 40, // × 32 scale → 1280 points, past the dense cap
        services: 8,
        requests: 120,
    };
    let sc = by_name("cold-scatter-large")
        .unwrap()
        .build(&profile, 13)
        .expect("cold-scatter-large");
    let inst = sc.instance();
    let mut tuned = PdOmflp::new(inst);
    tuned.set_partial_row_threshold(0);
    assert!(tuned.partial_rows_active());
    tuned.configure_parallel_scans(7, 2);
    let mut reference = PdOmflp::with_full_scans(inst);
    for (step, r) in sc.requests.iter().enumerate() {
        let a = tuned
            .serve(r)
            .unwrap_or_else(|e| panic!("cold-scatter: {e}"));
        let b = reference
            .serve(r)
            .unwrap_or_else(|e| panic!("cold-scatter reference: {e}"));
        assert_eq!(a, b, "cold-scatter: outcome diverged at arrival {step}");
    }
    assert_eq!(
        tuned.solution().total_cost().to_bits(),
        reference.solution().total_cost().to_bits(),
        "cold-scatter: costs diverged"
    );
    let promotions = tuned
        .row_fallback_promotions()
        .expect("blocked backend exposes the fallback counter");
    let (hits, misses, _) = tuned.distance_cache_stats().expect("blocked stats");
    assert!(
        hits + misses > 0,
        "the partial-row path must have touched the cache"
    );
    // Promotions only happen when an arrival's location hosts an opening
    // later; the adversary's hotspot phase makes that routine. If this
    // ever goes flaky, the blocked-cache unit tests still force the
    // fallback deterministically — this assert pins the *engine* wiring.
    assert!(
        promotions > 0,
        "openings on this workload must promote partial rows via the fallback"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random (large family, seed, threads, shard size) cells past the
    /// dense cap: the partial-row engine must be indistinguishable from
    /// the full-scan one. Thread counts beyond the machine's cores are
    /// deliberate — oversubscription must not be observable either.
    #[test]
    fn random_partial_row_configurations_never_change_outcomes(
        family_idx in 0usize..64,
        seed in 0u64..10_000,
        threads in 1usize..9,
        shard_blocks in 1usize..40,
        points in 33usize..44,
        services in 2u16..8,
        requests in 20usize..60,
    ) {
        let families = ["zipf-services-large", "euclid-grid-large", "cold-scatter-large"];
        let name = families[family_idx % families.len()];
        let profile = CatalogProfile { points, services, requests };
        let sc = by_name(name).unwrap().build(&profile, seed).unwrap();
        let inst = sc.instance();
        let mut tuned = PdOmflp::new(inst);
        tuned.set_partial_row_threshold(0);
        prop_assert!(tuned.partial_rows_active(), "{name} must cross the dense cap");
        tuned.configure_parallel_scans(threads, shard_blocks);
        let reference = PdOmflp::with_full_scans(inst);
        let label = format!("{name} t={threads} sb={shard_blocks}");
        assert_serve_lockstep(&sc, tuned, reference, &label);
    }
}
