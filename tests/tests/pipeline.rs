//! End-to-end pipelines: generate → run every algorithm → verify → compare.

use omfl_baselines::all_large::{AllLarge, AllLargeParts};
use omfl_baselines::per_commodity::{PerCommodity, PerCommodityParts};
use omfl_commodity::cost::CostModel;
use omfl_core::algorithm::{run_online_verified, OnlineAlgorithm};
use omfl_core::pd::PdOmflp;
use omfl_core::randalg::RandOmflp;
use omfl_core::validate;
use omfl_workload::composite::{clustered_bundles, service_network, uniform_line};
use omfl_workload::demand::{default_bundles, DemandModel};
use omfl_workload::Scenario;
use std::sync::Arc;

fn scenarios() -> Vec<Scenario> {
    vec![
        uniform_line(
            12,
            25.0,
            60,
            DemandModel::UniformK { k: 2 },
            CostModel::power(8, 1.0, 2.0),
            1,
        )
        .unwrap(),
        clustered_bundles(
            3,
            4,
            40.0,
            2.0,
            50,
            DemandModel::Bundles {
                bundles: default_bundles(8),
                noise: 0.2,
            },
            CostModel::affine(8, 5.0, 0.5),
            2,
        )
        .unwrap(),
        service_network(
            20,
            12,
            60,
            DemandModel::Zipf {
                alpha: 1.0,
                k_max: 4,
            },
            CostModel::power(10, 1.0, 3.0),
            3,
        )
        .unwrap(),
    ]
}

#[test]
fn every_algorithm_serves_every_scenario_feasibly() {
    for sc in scenarios() {
        let inst = sc.instance();

        let mut pd = PdOmflp::new(inst);
        let pd_cost = run_online_verified(&mut pd, inst, &sc.requests).unwrap();
        assert!(pd_cost > 0.0, "{}", sc.name);

        let mut rn = RandOmflp::new(inst, 5);
        let rn_cost = run_online_verified(&mut rn, inst, &sc.requests).unwrap();
        assert!(rn_cost > 0.0);

        let parts = PerCommodityParts::build(Arc::clone(&sc.metric), sc.cost.clone()).unwrap();
        let mut dc = PerCommodity::new_pd(&parts);
        let dc_cost = run_online_verified(&mut dc, &parts.original, &sc.requests).unwrap();
        assert!(dc_cost > 0.0);

        let al_parts = AllLargeParts::build(Arc::clone(&sc.metric), sc.cost.clone()).unwrap();
        let mut al = AllLarge::new_fotakis(&al_parts).unwrap();
        let al_cost = run_online_verified(&mut al, &al_parts.original, &sc.requests).unwrap();
        assert!(al_cost > 0.0);
    }
}

#[test]
fn pd_invariants_hold_on_all_scenarios() {
    for sc in scenarios() {
        let inst = sc.instance();
        let mut pd = PdOmflp::new(inst);
        for r in &sc.requests {
            pd.serve(r).unwrap();
        }
        validate::check_all(&pd).unwrap_or_else(|e| panic!("{}: {e}", sc.name));
    }
}

#[test]
fn pd_is_deterministic_across_runs_and_scenario_rebuilds() {
    let build = || {
        uniform_line(
            10,
            15.0,
            40,
            DemandModel::UniformK { k: 3 },
            CostModel::power(6, 1.0, 1.5),
            99,
        )
        .unwrap()
    };
    let costs: Vec<f64> = (0..3)
        .map(|_| {
            let sc = build();
            let mut pd = PdOmflp::new(sc.instance());
            run_online_verified(&mut pd, sc.instance(), &sc.requests).unwrap()
        })
        .collect();
    assert_eq!(costs[0], costs[1]);
    assert_eq!(costs[1], costs[2]);
}

#[test]
fn rand_expectation_is_stable_across_thread_counts() {
    // The parallel trial runner must not change results with concurrency.
    let sc = scenarios().remove(0);
    let run_with = |threads: usize| {
        let seeds: Vec<u64> = (0..6).collect();
        omfl_par::parallel_map(&seeds, threads, |_, &s| {
            let mut alg = RandOmflp::new(sc.instance(), omfl_par::seed_for(3, s));
            omfl_core::algorithm::run_online(&mut alg, &sc.requests).unwrap()
        })
    };
    assert_eq!(run_with(1), run_with(4));
}

#[test]
fn serve_outcome_accounting_matches_solution_totals() {
    let sc = scenarios().remove(1);
    let inst = sc.instance();
    let mut pd = PdOmflp::new(inst);
    let mut conn = 0.0;
    let mut cons = 0.0;
    for r in &sc.requests {
        let out = pd.serve(r).unwrap();
        conn += out.connection_cost;
        cons += out.construction_cost;
    }
    let sol = pd.solution();
    assert!((conn - sol.connection_cost()).abs() < 1e-9 * (1.0 + conn));
    assert!((cons - sol.construction_cost()).abs() < 1e-9 * (1.0 + cons));
}
