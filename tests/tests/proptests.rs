//! Property-based integration tests: random instances and request streams
//! must uphold the paper's invariants end to end.

use omfl_commodity::cost::CostModel;
use omfl_commodity::CommoditySet;
use omfl_core::algorithm::{run_online_verified, OnlineAlgorithm};
use omfl_core::instance::Instance;
use omfl_core::pd::PdOmflp;
use omfl_core::randalg::RandOmflp;
use omfl_core::request::Request;
use omfl_core::{transform, validate};
use omfl_metric::line::LineMetric;
use omfl_metric::PointId;
use omfl_workload::catalog::{registry, CatalogProfile};
use proptest::prelude::*;

/// Raw request draw: a location index and commodity indices (taken modulo
/// the instance dimensions when built).
type RawRequests = Vec<(u32, Vec<u16>)>;

/// Strategy: a random instance (line metric, power cost) plus requests.
fn instance_and_requests() -> impl Strategy<Value = (Vec<f64>, u16, f64, RawRequests)> {
    (
        prop::collection::vec(0.0..20.0f64, 1..6), // positions
        2..6u16,                                   // |S|
        0.0..2.0f64,                               // class-C exponent
        prop::collection::vec((0u32..6, prop::collection::vec(0u16..6, 1..4)), 1..18),
    )
}

fn build(positions: &[f64], s: u16, x: f64, raw: &[(u32, Vec<u16>)]) -> (Instance, Vec<Request>) {
    let inst = Instance::new(
        Box::new(LineMetric::new(positions.to_vec()).unwrap()),
        s,
        CostModel::power(s, x, 1.5),
    )
    .unwrap();
    let u = inst.universe();
    let m = inst.num_points() as u32;
    let reqs: Vec<Request> = raw
        .iter()
        .map(|(loc, ids)| {
            let ids: Vec<u16> = ids.iter().map(|&e| e % s).collect();
            Request::new(PointId(loc % m), CommoditySet::from_ids(u, &ids).unwrap())
        })
        .collect();
    (inst, reqs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PD: feasibility, Corollary 8, bid invariants and scaled-dual
    /// feasibility on arbitrary instances.
    #[test]
    fn pd_invariants_on_random_instances(
        (positions, s, x, raw) in instance_and_requests()
    ) {
        let (inst, reqs) = build(&positions, s, x, &raw);
        let mut pd = PdOmflp::new(&inst);
        run_online_verified(&mut pd, &inst, &reqs).unwrap();
        validate::check_all(&pd).unwrap();
    }

    /// RAND: always feasible, and its cost is at least the dual lower bound
    /// that PD's run certifies for OPT.
    #[test]
    fn rand_feasible_and_above_dual_lb(
        (positions, s, x, raw) in instance_and_requests(),
        seed in 0u64..1000,
    ) {
        let (inst, reqs) = build(&positions, s, x, &raw);
        let mut rn = RandOmflp::new(&inst, seed);
        let cost = run_online_verified(&mut rn, &inst, &reqs).unwrap();

        let mut pd = PdOmflp::new(&inst);
        run_online_verified(&mut pd, &inst, &reqs).unwrap();
        let lb = pd.scaled_dual_lower_bound();
        prop_assert!(cost >= lb - 1e-6, "RAND cost {} below dual LB {}", cost, lb);
    }

    /// The request-splitting transform preserves locations and multiplies
    /// counts correctly, and serving the split sequence is feasible.
    #[test]
    fn split_transform_round_trip(
        (positions, s, x, raw) in instance_and_requests()
    ) {
        let (inst, reqs) = build(&positions, s, x, &raw);
        let split = transform::split_into_singletons(&reqs);
        prop_assert_eq!(split.len(), transform::split_len(&reqs));
        let total: usize = reqs.iter().map(|r| r.demand().len()).sum();
        prop_assert_eq!(split.len(), total);
        for r in &split {
            prop_assert_eq!(r.demand().len(), 1);
        }
        let mut pd = PdOmflp::new(&inst);
        run_online_verified(&mut pd, &inst, &split).unwrap();
    }

    /// Monotone loads: serving a prefix costs no more than the full run
    /// (facilities and assignments are irrevocable, costs only accumulate).
    #[test]
    fn cost_is_monotone_in_the_prefix(
        (positions, s, x, raw) in instance_and_requests()
    ) {
        let (inst, reqs) = build(&positions, s, x, &raw);
        let mut pd = PdOmflp::new(&inst);
        let mut last = 0.0;
        for r in &reqs {
            pd.serve(r).unwrap();
            let c = pd.solution().total_cost();
            prop_assert!(c >= last - 1e-9);
            last = c;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// PD dual feasibility on catalog-generated instances, checked after
    /// EVERY arrival (not just at the end):
    ///
    /// * every cap `c_{re} = min(a_{re}, d(F(e), r))` never exceeds its dual
    ///   `a_{re}` (and the joint cap never exceeds `Σ_e a_{re}`);
    /// * the incrementally maintained bid matrices `B`/`B̂` stay
    ///   non-negative — the cap-shrinkage subtractions in `post_open_*`
    ///   must never overshoot the additions.
    ///
    /// The final state additionally passes the full independent validator
    /// (bid feasibility, Corollary 8, scaled dual feasibility).
    #[test]
    fn pd_dual_feasibility_on_catalog_instances(
        family_idx in 0usize..64,
        seed in 0u64..500,
        requests in 6usize..26,
    ) {
        let families = registry();
        let fam = families[family_idx % families.len()];
        let profile = CatalogProfile { points: 8, services: 8, requests };
        let sc = fam.build(&profile, seed).unwrap();
        let inst = sc.instance();
        let mut pd = PdOmflp::new(inst);
        for (step, r) in sc.requests.iter().enumerate() {
            pd.serve(r).unwrap();
            for (ri, pr) in pd.past_requests().iter().enumerate() {
                let mut dual_sum = 0.0;
                for (slot, (&cap, &dual)) in pr.caps.iter().zip(&pr.duals).enumerate() {
                    prop_assert!(
                        cap <= dual + 1e-9,
                        "{}: step {step}, request {ri}, slot {slot}: cap {cap} > dual {dual}",
                        fam.name
                    );
                    dual_sum += dual;
                }
                prop_assert!(
                    pr.cap_total <= dual_sum + 1e-9,
                    "{}: step {step}, request {ri}: joint cap {} > Σa = {dual_sum}",
                    fam.name,
                    pr.cap_total
                );
            }
            let (b_small, b_large) = pd.bids();
            for (i, &b) in b_small.iter().enumerate() {
                prop_assert!(
                    b >= -1e-7,
                    "{}: step {step}: B[{i}] went negative: {b}",
                    fam.name
                );
            }
            for (m, &b) in b_large.iter().enumerate() {
                prop_assert!(
                    b >= -1e-7,
                    "{}: step {step}: B̂[{m}] went negative: {b}",
                    fam.name
                );
            }
        }
        validate::check_all(&pd).unwrap();
    }
}
