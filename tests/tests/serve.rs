//! Serve-layer acceptance: the multi-tenant loop must be bit-identical
//! across shard counts, thread counts and micro-batch sizes, must agree
//! with the single-tenant batch runner per tenant, and must survive every
//! degenerate stream (|M| = 1, zero-demand arrivals, empty batches,
//! traffic-less tenants) without losing snapshot consistency.

use omfl_commodity::cost::CostModel;
use omfl_commodity::{CommoditySet, Universe};
use omfl_core::request::Request;
use omfl_core::CoreError;
use omfl_metric::line::LineMetric;
use omfl_metric::PointId;
use omfl_par::TaskPool;
use omfl_serve::{ServeConfig, ServeError, ServeReport, Server};
use omfl_sim::{build_scenario, run_engine, ArrivalSource, Engine, SimConfig};
use omfl_workload::Scenario;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A small fleet of distinct tenant scenarios (different seeds and sizes).
fn tenant_fleet(n: usize) -> Vec<Scenario> {
    (0..n)
        .map(|t| {
            build_scenario(&SimConfig {
                nodes: 20 + 3 * t,
                extra_edges: 10,
                requests: 40 + 11 * t,
                seed: 1000 + t as u64,
                ..SimConfig::default()
            })
            .expect("scenario builds")
        })
        .collect()
}

fn lens(scenarios: &[Scenario]) -> Vec<usize> {
    scenarios.iter().map(|s| s.requests.len()).collect()
}

fn serve_once(
    scenarios: &[Scenario],
    source: &ArrivalSource,
    shards: usize,
    threads: usize,
    micro_batch: usize,
) -> ServeReport {
    let pool = TaskPool::new(threads);
    let server = Server::new(scenarios, Engine::Pd).expect("pd tenants build");
    let cfg = ServeConfig {
        shards,
        micro_batch,
        queue_capacity: 128,
        deadline: None,
    };
    let (report, telemetry) = server.serve(source, &cfg, &pool).expect("serve succeeds");
    assert_eq!(telemetry.shards, shards.max(1));
    report
}

/// The acceptance gate: aggregate serve reports are bit-identical across
/// shard/thread configurations 1/2/7/16 and across micro-batch sizes.
#[test]
fn serve_reports_bit_identical_across_shards_threads_and_batches() {
    let scenarios = tenant_fleet(5);
    let source = ArrivalSource::interleaved(&lens(&scenarios), 99);
    let baseline = serve_once(&scenarios, &source, 1, 1, 64);
    assert_eq!(baseline.arrivals, source.len());
    for (shards, threads, micro_batch) in [
        (2, 2, 64),
        (7, 7, 1),
        (16, 16, 7),
        (16, 2, 1024),
        (3, 16, 5),
    ] {
        let report = serve_once(&scenarios, &source, shards, threads, micro_batch);
        assert_eq!(
            report, baseline,
            "serve report diverged at shards={shards} threads={threads} batch={micro_batch}"
        );
        assert_eq!(report.digest, baseline.digest);
    }
}

/// The interleaving itself must not matter either: round-robin and seeded
/// weighted merges of the same per-tenant streams serve each tenant the
/// same requests in the same order, so per-tenant reports coincide.
#[test]
fn serve_report_independent_of_interleaving() {
    let scenarios = tenant_fleet(3);
    let ls = lens(&scenarios);
    let a = serve_once(&scenarios, &ArrivalSource::round_robin(&ls), 2, 4, 16);
    let b = serve_once(&scenarios, &ArrivalSource::interleaved(&ls, 1), 2, 4, 16);
    let c = serve_once(&scenarios, &ArrivalSource::interleaved(&ls, 2), 2, 4, 16);
    assert_eq!(a, b);
    assert_eq!(b, c);
}

/// Each tenant's report through the serve loop equals the single-tenant
/// batch runner's report for the same scenario and engine.
#[test]
fn serve_tenants_match_batch_runner() {
    let scenarios = tenant_fleet(4);
    let source = ArrivalSource::round_robin(&lens(&scenarios));
    let report = serve_once(&scenarios, &source, 4, 4, 32);
    assert_eq!(report.engine, "pd-omflp");
    for (scenario, served) in scenarios.iter().zip(&report.tenants) {
        let batch = run_engine(scenario, Engine::Pd).expect("batch run succeeds");
        assert_eq!(served, &batch, "tenant {} diverged", scenario.name);
    }
}

/// Snapshot handles read consistent state concurrently with the serve loop
/// and settle on the final engine state; a traffic-less tenant's handle
/// stays at the default snapshot throughout.
#[test]
fn snapshots_read_consistently_and_idle_tenant_stays_default() {
    let scenarios = tenant_fleet(3);
    let mut ls = lens(&scenarios);
    ls[1] = 0; // tenant 1 exists but receives no traffic
    let source = ArrivalSource::round_robin(&ls);
    let pool = TaskPool::new(4);
    let server = Server::new(&scenarios, Engine::Pd).expect("pd tenants build");
    let handles: Vec<_> = (0..scenarios.len())
        .map(|t| server.snapshot_handle(t).expect("tenant not poisoned"))
        .collect();
    let stop = Arc::new(AtomicBool::new(false));

    let (report, _telemetry) = std::thread::scope(|scope| {
        let reader = {
            let handles = handles.clone();
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for h in &handles {
                        let snap = h.read();
                        // Internal consistency: a published snapshot is one
                        // coherent engine state, never a torn mix.
                        assert!(snap.facilities >= snap.large_facilities);
                        assert!(snap.construction_cost >= 0.0);
                        assert!(snap.connection_cost >= 0.0);
                        assert!(snap.arrivals > 0 || snap.total_cost() == 0.0);
                        reads += 1;
                    }
                }
                reads
            })
        };
        let out = server
            .serve(&source, &ServeConfig::default(), &pool)
            .expect("serve succeeds");
        stop.store(true, Ordering::Relaxed);
        assert!(reader.join().expect("reader clean") > 0);
        out
    });

    assert_eq!(*handles[1].read(), Default::default(), "idle tenant");
    assert_eq!(report.tenants[1].requests, 0);
    assert_eq!(report.tenants[1].total_cost, 0.0);
    for t in [0, 2] {
        let snap = handles[t].read();
        assert_eq!(snap.arrivals, report.tenants[t].requests);
        assert_eq!(snap.construction_cost, report.tenants[t].construction_cost);
        assert_eq!(snap.connection_cost, report.tenants[t].connection_cost);
        assert!(snap.dual_lower_bound > 0.0, "pd publishes its dual bound");
    }
}

/// A single-point metric (|M| = 1) flows through every engine and through
/// the serve loop: everything is forced onto the one location.
#[test]
fn single_point_metric_through_every_engine_and_serve() {
    let metric: Arc<dyn omfl_metric::Metric> =
        Arc::new(LineMetric::new(vec![0.0]).expect("one point"));
    let universe = Universe::new(4).expect("universe");
    let requests: Vec<Request> = (0..6)
        .map(|i| {
            let ids = [i % 4, (i + 1) % 4];
            Request::new(PointId(0), CommoditySet::from_ids(universe, &ids).unwrap())
        })
        .collect();
    let cost = CostModel::affine(4, 3.0, 0.5);
    let scenario = Scenario::new("single-point", metric, cost, requests).expect("scenario builds");

    for engine in Engine::all(7) {
        let report = run_engine(&scenario, engine).expect("engine survives |M| = 1");
        assert_eq!(report.requests, 6);
        assert!(report.facilities >= 1);
        assert_eq!(report.latency.max, 0.0, "one point, zero distances");
    }

    let scenarios = vec![scenario];
    let source = ArrivalSource::round_robin(&lens(&scenarios));
    let report = serve_once(&scenarios, &source, 2, 2, 2);
    assert_eq!(report.arrivals, 6);
    assert_eq!(
        report.tenants[0],
        run_engine(&scenarios[0], Engine::Pd).unwrap()
    );
}

/// Zero-demand arrivals cannot be constructed: the request constructor is
/// the serve loop's guarantee that every queued arrival has `sr ≠ ∅`.
#[test]
fn zero_demand_arrivals_are_rejected_at_construction() {
    let universe = Universe::new(3).expect("universe");
    let err = Request::try_new(PointId(0), CommoditySet::empty(universe)).unwrap_err();
    assert!(matches!(err, CoreError::BadRequest(_)));
}

/// Empty streams and empty micro-batches terminate cleanly: the report has
/// zero arrivals and zero cost everywhere.
#[test]
fn empty_stream_serves_to_an_empty_report() {
    let scenarios = tenant_fleet(2);
    let source = ArrivalSource::round_robin(&[0, 0]);
    assert!(source.is_empty());
    let report = serve_once(&scenarios, &source, 4, 2, 8);
    assert_eq!(report.arrivals, 0);
    assert_eq!(report.total_cost, 0.0);
    assert_eq!(report.facilities, 0);
    assert_eq!(report.tenants.len(), 2);
    for t in &report.tenants {
        assert_eq!(t.requests, 0);
        assert!(t.cost_over_time.is_empty());
    }
    // No tenants at all is equally fine.
    let no_tenants: Vec<Scenario> = Vec::new();
    let none = serve_once(&no_tenants, &ArrivalSource::round_robin(&[]), 3, 2, 8);
    assert_eq!(none.arrivals, 0);
    assert!(none.tenants.is_empty());
}

/// The projected baselines cannot live as boxed tenant engines; the server
/// reports that as a typed error instead of panicking.
#[test]
fn unsupported_tenant_engines_surface_a_typed_error() {
    let scenarios = tenant_fleet(1);
    for engine in [Engine::PerCommodity, Engine::AllLarge] {
        match Server::new(&scenarios, engine) {
            Err(ServeError::UnsupportedEngine(name)) => assert_eq!(name, engine.name()),
            Err(e) => panic!("unexpected error: {e}"),
            Ok(_) => panic!("expected UnsupportedEngine for {}", engine.name()),
        }
    }
}

/// Degenerate config values (zero shards, zero micro-batch) clamp instead
/// of dividing by zero or spinning.
#[test]
fn degenerate_config_values_are_clamped() {
    let scenarios = tenant_fleet(1);
    let source = ArrivalSource::round_robin(&lens(&scenarios));
    let report = serve_once(&scenarios, &source, 0, 1, 0);
    assert_eq!(report.arrivals, source.len());
}
