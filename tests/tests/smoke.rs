//! Cross-crate smoke test: the fastest end-to-end exercise of the workspace.
//!
//! Runs PD-OMFLP and the per-commodity decomposition on a small line-metric
//! instance and on the Theorem 2 adversary gadget, and checks PD's measured
//! cost against the closed-form bound curves in `omfl_core::bounds`:
//! Theorem 2 says *every* online algorithm pays Ω(√|S|)·OPT on the gadget's
//! first phase, and Theorem 4 caps PD at O(√|S|·log n)·OPT everywhere.

use omfl_baselines::offline::ExactSolver;
use omfl_baselines::per_commodity::{PerCommodity, PerCommodityParts};
use omfl_commodity::cost::CostModel;
use omfl_commodity::CommoditySet;
use omfl_core::algorithm::run_online_verified;
use omfl_core::bounds;
use omfl_core::instance::Instance;
use omfl_core::pd::PdOmflp;
use omfl_core::request::Request;
use omfl_metric::line::LineMetric;
use omfl_metric::PointId;
use omfl_workload::adversarial::{theorem2_gadget, theorem2_opt, Theorem2Phase};
use std::sync::Arc;

/// A 4-point line, 3 commodities, a short request stream touching every
/// point — small enough for the exact solver.
fn small_line() -> (Instance, Vec<Request>) {
    let inst = Instance::new(
        Box::new(LineMetric::new(vec![0.0, 1.0, 3.0, 7.0]).unwrap()),
        3,
        CostModel::power(3, 1.0, 2.0),
    )
    .unwrap();
    let u = inst.universe();
    let reqs: Vec<Request> = [
        (0u32, vec![0u16]),
        (1, vec![0, 1]),
        (2, vec![2]),
        (3, vec![0, 1, 2]),
        (0, vec![1, 2]),
        (2, vec![0]),
    ]
    .iter()
    .map(|(loc, ids)| Request::new(PointId(*loc), CommoditySet::from_ids(u, ids).unwrap()))
    .collect();
    (inst, reqs)
}

#[test]
fn pd_and_per_commodity_serve_a_small_line_instance() {
    let (inst, reqs) = small_line();

    let mut pd = PdOmflp::new(&inst);
    let pd_cost = run_online_verified(&mut pd, &inst, &reqs).unwrap();
    assert!(pd_cost > 0.0);

    let metric: Arc<dyn omfl_metric::Metric> =
        Arc::new(LineMetric::new(vec![0.0, 1.0, 3.0, 7.0]).unwrap());
    let parts = PerCommodityParts::build(metric, CostModel::power(3, 1.0, 2.0)).unwrap();
    let mut dc = PerCommodity::new_pd(&parts);
    let dc_cost = run_online_verified(&mut dc, &parts.original, &reqs).unwrap();
    assert!(dc_cost > 0.0);

    // Theorem 4 shape as a sanity ceiling: PD within O(√|S|·ln n)·OPT,
    // with a generous constant (the paper's hidden constant is small).
    let opt = ExactSolver::new().solve(&inst, &reqs).unwrap().total_cost();
    assert!(opt > 0.0);
    let ceiling = 8.0 * bounds::pd_upper(3, inst.num_points()) * opt;
    assert!(
        pd_cost <= ceiling,
        "PD cost {pd_cost} exceeds Theorem 4 ceiling {ceiling} (OPT = {opt})"
    );
    assert!(pd_cost >= opt - 1e-9, "online cannot beat OPT");
}

#[test]
fn pd_respects_theorem2_bound_curve_on_the_gadget() {
    // Phase 1 (S' only): OPT = 1 and Theorem 2 forces EVERY algorithm to
    // pay Ω(√|S|) — PD's cost must sit on that curve (≈ 2√S for PD),
    // bracketed here with factor-4 slack on both sides.
    let s: u16 = 64;
    let sc = theorem2_gadget(s, Theorem2Phase::SPrimeOnly, 11).unwrap();
    let mut pd = PdOmflp::new(sc.instance());
    let cost = run_online_verified(&mut pd, sc.instance(), &sc.requests).unwrap();
    let opt = theorem2_opt(s, Theorem2Phase::SPrimeOnly);
    let ratio = cost / opt;
    let curve = bounds::sqrt_s(s as usize);
    assert!(
        ratio >= curve / 4.0,
        "PD ratio {ratio} below the Theorem 2 lower-bound curve √S = {curve}"
    );
    assert!(
        ratio <= 4.0 * curve,
        "PD ratio {ratio} far above the √S curve {curve}: prediction is broken"
    );

    // Phase 2 (S' then all of S): prediction pays off — PD converges to
    // O(1)·OPT while the never-predicting decomposition stays near √S·OPT.
    let sc2 = theorem2_gadget(s, Theorem2Phase::SPrimeThenAll, 11).unwrap();
    let mut pd2 = PdOmflp::new(sc2.instance());
    let pd2_cost = run_online_verified(&mut pd2, sc2.instance(), &sc2.requests).unwrap();

    let parts = PerCommodityParts::build(Arc::clone(&sc2.metric), sc2.cost.clone()).unwrap();
    let mut dc = PerCommodity::new_pd(&parts);
    let dc_cost = run_online_verified(&mut dc, &parts.original, &sc2.requests).unwrap();

    let opt2 = theorem2_opt(s, Theorem2Phase::SPrimeThenAll);
    assert!(
        pd2_cost / opt2 < dc_cost / opt2,
        "PD ({}) must beat the never-predict decomposition ({}) once prediction pays",
        pd2_cost / opt2,
        dc_cost / opt2
    );
}
