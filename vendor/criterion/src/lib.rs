//! Vendored, minimal stand-in for the subset of [`criterion`] this
//! workspace's benches use (the build environment cannot fetch crates.io —
//! see `vendor/README.md`).
//!
//! It is a *real* (if simple) benchmark runner: each target is warmed up for
//! `warm_up_time`, then timed in batches until `measurement_time` elapses or
//! `sample_size` samples are collected, and the mean/min/max per-iteration
//! wall time is printed. There are no plots, no statistical regression
//! analysis, and no baseline comparisons.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting benchmarked
/// work. Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted, not acted upon: this
/// stand-in always runs setup once per measured iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: batch many iterations per setup in real criterion.
    SmallInput,
    /// Large input: fewer iterations per setup.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark (recorded and echoed in output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` — mirrors criterion's display form.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter (criterion's `from_parameter`).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            measurement_time: Duration::from_millis(1000),
            warm_up_time: Duration::from_millis(200),
            sample_size: 20,
        }
    }
}

/// The benchmark manager (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the number of timed samples to collect.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.config, id, None, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks in the group with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&self.criterion.config, &full, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Runs a benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&self.criterion.config, &full, self.throughput, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to every benchmark closure; drives timed iterations.
pub struct Bencher<'a> {
    config: &'a Config,
    samples: Vec<f64>,
}

impl Bencher<'_> {
    /// Times `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.iter_batched(|| (), |()| routine(), BatchSize::PerIteration);
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_end = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_end {
            let input = setup();
            black_box(routine(input));
        }

        let deadline = Instant::now() + self.config.measurement_time;
        let mut samples = Vec::with_capacity(self.config.sample_size);
        while samples.len() < self.config.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            samples.push(t0.elapsed().as_secs_f64());
            if Instant::now() >= deadline {
                break;
            }
        }
        self.samples = samples;
    }
}

fn run_one(
    config: &Config,
    name: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        config,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let n = b.samples.len();
    let mean = b.samples.iter().sum::<f64>() / n as f64;
    let min = b.samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = b.samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let extra = match throughput {
        Some(Throughput::Elements(e)) if mean > 0.0 => {
            format!("  thrpt: {:.0} elem/s", e as f64 / mean)
        }
        Some(Throughput::Bytes(by)) if mean > 0.0 => {
            format!("  thrpt: {:.0} B/s", by as f64 / mean)
        }
        _ => String::new(),
    };
    println!(
        "{name:<40} time: [{} {} {}]  ({n} samples){extra}",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a group runner function (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass flags like `--bench`; accept
            // and ignore them. `--test` means "run as a test": do a single
            // quick pass only.
            let test_mode = std::env::args().any(|a| a == "--test");
            if test_mode {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1))
            .sample_size(3)
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4], |b, xs| {
            b.iter_batched(
                || xs.to_vec(),
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn id_renders_function_and_parameter() {
        assert_eq!(BenchmarkId::new("pd", "n64").to_string(), "pd/n64");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
