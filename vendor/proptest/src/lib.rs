//! Vendored, minimal stand-in for the subset of [`proptest`] this workspace
//! uses (the build environment cannot fetch crates.io — see
//! `vendor/README.md`).
//!
//! Supported surface: the [`proptest!`] macro (with an optional leading
//! `#![proptest_config(..)]`), [`strategy::Strategy`] implemented for
//! numeric ranges, tuples of strategies, and [`collection::vec`];
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`]; and
//! [`test_runner::ProptestConfig`].
//!
//! Deliberate simplifications relative to upstream: cases are generated from
//! a fixed deterministic seed (reproducible across runs and machines), and
//! there is **no shrinking** — a failing case panics with the assertion
//! message and its case index.

/// Strategies: how to generate random values of a type.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of values of type [`Strategy::Value`].
    ///
    /// Upstream proptest separates strategies from value trees to support
    /// shrinking; this stand-in only ever generates.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// A strategy that always yields a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Strategy returned by [`crate::collection::vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::strategy::{Strategy, VecStrategy};

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Test-runner configuration (mirrors `proptest::test_runner`).
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Everything a property-test module needs (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Per-case seed: SplitMix64-style mix of a fixed base and the case
    /// index, so every case is independent and every run reproducible.
    pub fn case_seed(case: u64) -> u64 {
        let mut z = 0x9E37_79B9_7F4A_7C15u64 ^ case.wrapping_mul(0xD134_2543_DE82_EF95);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    }
}

/// Discards the current case when the assumption does not hold (expands to
/// `continue` — the property body runs directly inside the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts a condition inside a property (panics with the case context).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that generates inputs and runs the body for every
/// case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut __proptest_rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::
                    seed_from_u64($crate::__rt::case_seed(case));
                let ($($pat,)+) = ($(
                    $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng),
                )+);
                $body
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, f64)> {
        (0u32..10, 0.0..1.0f64)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in -2.0..2.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u16..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            for e in &v {
                prop_assert!(*e < 5);
            }
        }

        #[test]
        fn nested_tuples_and_custom_strategies(
            (a, f) in pair(),
            pairs in prop::collection::vec((0u32..4, prop::collection::vec(0u16..3, 1..3)), 1..6),
        ) {
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert!(!pairs.is_empty());
            for (x, ys) in &pairs {
                prop_assert!(*x < 4);
                prop_assert!(!ys.is_empty() && ys.len() < 3);
            }
        }
    }
}
