//! Vendored, dependency-free stand-in for the subset of the [`rand`] crate
//! this workspace uses (the build environment has no network access to
//! crates.io, so the real crate cannot be fetched — see `vendor/README.md`).
//!
//! API-compatible subset: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle`, `partial_shuffle`, `choose`).
//!
//! The generator is SplitMix64, *not* the real `StdRng` (ChaCha12): streams
//! are deterministic per seed and uniform enough for test workloads, but do
//! not reproduce upstream `rand`'s exact values. `partial_shuffle` follows
//! rand 0.8 semantics (the chosen `amount` elements end up at the *end* of
//! the slice and are returned as the first slice of the pair).

/// Low-level source of randomness: 64 uniform bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types sampleable uniformly from an [`RngCore`] (the `Standard`
/// distribution in real `rand`, reachable through [`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a single uniform sample (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi - lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width u64 range: every value is valid.
                    return lo + (rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    // Span arithmetic must go through the same-width unsigned type ($u):
    // a direct `as u64` would sign-extend a wrapped difference.
    ($(($t:ty, $u:ty)),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi.wrapping_sub(lo) as $u as u64).wrapping_add(1);
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

signed_sample_range!((i8, u8), (i16, u16), (i32, u32), (i64, u64), (isize, usize));

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`. Panics on empty ranges.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64 — not
    /// the upstream ChaCha12, see the crate docs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Uniformly chooses one element, or `None` if the slice is empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle of the whole slice.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Shuffles just enough to randomly select `amount` elements, which
        /// end up at the *end* of the slice (rand 0.8 semantics). Returns
        /// `(chosen, rest)`.
        fn partial_shuffle<R: RngCore>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                Some(&self[i])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: RngCore>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let len = self.len();
            let m = len.saturating_sub(amount);
            for i in (m..len).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
            let (rest, chosen) = self.split_at_mut(m);
            (chosen, rest)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5u32..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&w));
            let f = rng.gen_range(-1.0..3.5f64);
            assert!((-1.0..3.5).contains(&f));
        }
    }

    #[test]
    fn signed_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1000 {
            // Wider than the type's positive half: exercises the
            // unsigned-widening span computation.
            let v = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&v));
            let w = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = w; // full-width: any value is valid
        }
    }

    #[test]
    fn full_width_inclusive_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(17);
        // Must not panic in debug builds (span wraps to 0 -> full-width path).
        let _ = rng.gen_range(0u64..=u64::MAX);
        let _ = rng.gen_range(0u8..=u8::MAX);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn partial_shuffle_splits_at_amount() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..10).collect();
        let (chosen, rest) = v.partial_shuffle(&mut rng, 3);
        assert_eq!(chosen.len(), 3);
        assert_eq!(rest.len(), 7);
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([5u8].choose(&mut rng) == Some(&5));
    }
}
